"""Abstract syntax tree for MiniC.

Expression nodes carry a ``type`` slot filled in by the semantic pass
(:mod:`repro.frontend.sema`); the legality and profitability analyses, the
transformations, and the interpreter all consume this typed AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

from .typesys import Type, RecordType


@dataclass
class Node:
    """Base AST node; ``line`` is the 1-based source line."""
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    #: filled by sema: the expression's MiniC type
    type: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Ident(Expr):
    name: str = ""
    #: filled by sema: the resolved Symbol
    symbol: object = None


@dataclass
class Unary(Expr):
    op: str = ""           # '-', '!', '~', '*', '&', '++', '--', 'p++', 'p--'
    operand: Expr = None   # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None      # type: ignore[assignment]
    right: Expr = None     # type: ignore[assignment]


@dataclass
class Assign(Expr):
    op: str = "="          # '=', '+=', '-=', ...
    target: Expr = None    # type: ignore[assignment]
    value: Expr = None     # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    cond: Expr = None      # type: ignore[assignment]
    then: Expr = None      # type: ignore[assignment]
    els: Expr = None       # type: ignore[assignment]


@dataclass
class Comma(Expr):
    parts: list[Expr] = dc_field(default_factory=list)


@dataclass
class Call(Expr):
    func: Expr = None      # type: ignore[assignment]
    args: list[Expr] = dc_field(default_factory=list)

    @property
    def callee_name(self) -> str | None:
        """Syntactic callee name, or None for non-identifier callees."""
        if isinstance(self.func, Ident):
            return self.func.name
        return None

    @property
    def resolved_callee(self) -> str | None:
        """Direct callee name after symbol resolution; None for indirect
        calls — including calls through function-pointer *variables*,
        which look direct syntactically."""
        if isinstance(self.func, Ident):
            sym = self.func.symbol
            if sym is None or getattr(sym, "is_function", False):
                return self.func.name
        return None


@dataclass
class Index(Expr):
    base: Expr = None      # type: ignore[assignment]
    index: Expr = None     # type: ignore[assignment]


@dataclass
class Member(Expr):
    """``base.name`` when arrow is False, ``base->name`` when True."""
    base: Expr = None      # type: ignore[assignment]
    name: str = ""
    arrow: bool = False
    #: filled by sema: the record type owning the field
    record: Optional[RecordType] = None


@dataclass
class Cast(Expr):
    to: Type = None        # type: ignore[assignment]
    operand: Expr = None   # type: ignore[assignment]


@dataclass
class SizeofType(Expr):
    of: Type = None        # type: ignore[assignment]


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None   # type: ignore[assignment]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None      # type: ignore[assignment]


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration, possibly with an initializer."""
    name: str = ""
    decl_type: Type = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    symbol: object = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = dc_field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None      # type: ignore[assignment]
    then: Stmt = None      # type: ignore[assignment]
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None      # type: ignore[assignment]
    body: Stmt = None      # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None      # type: ignore[assignment]
    cond: Expr = None      # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None    # ExprStmt or DeclStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None      # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: Type = None      # type: ignore[assignment]
    symbol: object = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    ret_type: Type = None  # type: ignore[assignment]
    params: list[Param] = dc_field(default_factory=list)
    body: Optional[Block] = None   # None for a declaration (prototype)
    is_static: bool = False

    @property
    def is_definition(self) -> bool:
        return self.body is not None


@dataclass
class GlobalVar(Node):
    name: str = ""
    decl_type: Type = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    is_static: bool = False
    symbol: object = None


@dataclass
class StructDecl(Node):
    """Top-level struct definition; the type object is shared with sema."""
    record: RecordType = None  # type: ignore[assignment]


@dataclass
class TypedefDecl(Node):
    name: str = ""
    aliased: Type = None   # type: ignore[assignment]


@dataclass
class TranslationUnit(Node):
    """One MiniC source file — the FE's unit of analysis."""
    name: str = "<unit>"
    decls: list[Node] = dc_field(default_factory=list)

    def functions(self) -> list[FunctionDef]:
        return [d for d in self.decls
                if isinstance(d, FunctionDef) and d.is_definition]

    def globals(self) -> list[GlobalVar]:
        return [d for d in self.decls if isinstance(d, GlobalVar)]

    def records(self) -> list[RecordType]:
        return [d.record for d in self.decls if isinstance(d, StructDecl)]


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------

def child_exprs(e: Expr) -> list[Expr]:
    """Direct sub-expressions of an expression node."""
    if isinstance(e, Unary):
        return [e.operand]
    if isinstance(e, Binary):
        return [e.left, e.right]
    if isinstance(e, Assign):
        return [e.target, e.value]
    if isinstance(e, Conditional):
        return [e.cond, e.then, e.els]
    if isinstance(e, Comma):
        return list(e.parts)
    if isinstance(e, Call):
        return [e.func] + list(e.args)
    if isinstance(e, Index):
        return [e.base, e.index]
    if isinstance(e, Member):
        return [e.base]
    if isinstance(e, Cast):
        return [e.operand]
    if isinstance(e, SizeofExpr):
        return [e.operand]
    return []


def walk_expr(e: Expr):
    """Yield ``e`` and every sub-expression, pre-order."""
    stack = [e]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        stack.extend(reversed(child_exprs(node)))


def stmt_exprs(s: Stmt) -> list[Expr]:
    """Direct expressions of a statement (not recursing into sub-stmts)."""
    if isinstance(s, ExprStmt):
        return [s.expr]
    if isinstance(s, DeclStmt):
        return [s.init] if s.init is not None else []
    if isinstance(s, If):
        return [s.cond]
    if isinstance(s, While):
        return [s.cond]
    if isinstance(s, DoWhile):
        return [s.cond]
    if isinstance(s, For):
        out = []
        if s.cond is not None:
            out.append(s.cond)
        if s.step is not None:
            out.append(s.step)
        return out
    if isinstance(s, Return):
        return [s.value] if s.value is not None else []
    return []


def child_stmts(s: Stmt) -> list[Stmt]:
    """Direct sub-statements of a statement node."""
    if isinstance(s, Block):
        return list(s.stmts)
    if isinstance(s, If):
        return [s.then] + ([s.els] if s.els is not None else [])
    if isinstance(s, While):
        return [s.body]
    if isinstance(s, DoWhile):
        return [s.body]
    if isinstance(s, For):
        out = []
        if s.init is not None:
            out.append(s.init)
        out.append(s.body)
        return out
    return []


def walk_stmts(s: Stmt):
    """Yield ``s`` and every sub-statement, pre-order."""
    stack = [s]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        stack.extend(reversed(child_stmts(node)))


def function_exprs(fn: FunctionDef):
    """Yield every expression node in a function body, fully recursive."""
    if fn.body is None:
        return
    for s in walk_stmts(fn.body):
        for e in stmt_exprs(s):
            yield from walk_expr(e)
