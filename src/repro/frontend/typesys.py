"""Type system for the MiniC frontend.

Models the C type system closely enough to reproduce the paper's analyses:
scalar types with Itanium LP64 sizes and alignments, pointers, arrays, and
record (struct) types with C-compatible layout: fields are placed at
offsets aligned to their natural alignment, the struct size is rounded up
to the maximum field alignment, and bit-fields are packed into their
declared base type's storage units.

Record layout is recomputed on demand so that the transformation passes can
reorder, remove, and split fields and immediately observe the new offsets
and sizes (this is what Figure 1 of the paper illustrates).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TypeError_(Exception):
    """Raised for inconsistencies while building or laying out types."""


class Type:
    """Base class of all MiniC types."""

    #: byte size; record types override via a computed property
    size: int = 0
    #: required alignment in bytes
    align: int = 1

    def is_scalar(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_record(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_function(self) -> bool:
        return False

    def strip(self) -> "Type":
        """Return the type with typedef sugar removed (identity by default)."""
        return self


@dataclass(frozen=True)
class VoidType(Type):
    size: int = 0
    align: int = 1

    def is_void(self) -> bool:
        return True

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Integer type with LP64 sizes (char 1, short 2, int 4, long 8)."""

    name: str = "int"
    size: int = 4
    align: int = 4
    signed: bool = True

    def is_scalar(self) -> bool:
        return True

    def is_integer(self) -> bool:
        return True

    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (8 * self.size - 1))

    def max_value(self) -> int:
        if not self.signed:
            return (1 << (8 * self.size)) - 1
        return (1 << (8 * self.size - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python integer into this type's representable range."""
        bits = 8 * self.size
        value &= (1 << bits) - 1
        if self.signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(Type):
    name: str = "double"
    size: int = 8
    align: int = 8

    def is_scalar(self) -> bool:
        return True

    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type = None  # type: ignore[assignment]
    size: int = 8
    align: int = 8

    def is_scalar(self) -> bool:
        return True

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type = None  # type: ignore[assignment]
    length: int = 0

    def is_array(self) -> bool:
        return True

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.elem.size * self.length

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.elem.align

    def __str__(self) -> str:
        return f"{self.elem}[{self.length}]"


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type = None  # type: ignore[assignment]
    params: tuple = ()
    varargs: bool = False
    size: int = 8
    align: int = 8

    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.varargs:
            ps = ps + ", ..." if ps else "..."
        return f"{self.ret}({ps})"


@dataclass
class Field:
    """A struct member.

    ``bit_width`` is ``None`` for ordinary fields; bit-fields carry their
    declared width and are packed into units of their base type.  Offsets
    are assigned by :meth:`RecordType.layout`.
    """

    name: str
    type: Type
    bit_width: int | None = None
    offset: int = -1
    bit_offset: int = 0
    index: int = -1

    @property
    def is_bitfield(self) -> bool:
        return self.bit_width is not None

    @property
    def size(self) -> int:
        return self.type.size

    def __str__(self) -> str:
        if self.is_bitfield:
            return f"{self.type} {self.name} : {self.bit_width}"
        return f"{self.type} {self.name}"


class RecordType(Type):
    """A struct type with C layout rules.

    The field list is mutable on purpose: the BE transformations create new
    record types and edit field lists, then call :meth:`layout` to assign
    offsets.  ``origin`` records the record this type was derived from by a
    transformation (e.g. the cold part created by splitting points back to
    the original struct).
    """

    def __init__(self, name: str, fields: list[Field] | None = None,
                 origin: "RecordType | None" = None):
        self.name = name
        self.fields: list[Field] = []
        self.origin = origin
        self._size = 0
        self._align = 1
        self._laid_out = False
        if fields:
            for f in fields:
                self.add_field(f)
            self.layout()

    # -- construction -------------------------------------------------

    def add_field(self, f: Field) -> None:
        if any(existing.name == f.name for existing in self.fields):
            raise TypeError_(
                f"duplicate field {f.name!r} in struct {self.name}")
        f.index = len(self.fields)
        self.fields.append(f)
        self._laid_out = False

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise TypeError_(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    # -- layout --------------------------------------------------------

    def layout(self) -> None:
        """Assign offsets with C struct layout rules.

        Ordinary fields go at the next offset aligned to their natural
        alignment.  Consecutive bit-fields pack into storage units of their
        base type; a bit-field that does not fit into the remaining bits of
        the current unit starts a new unit.
        """
        offset = 0
        max_align = 1
        bit_cursor = -1   # bit position inside the current bit-field unit
        unit_start = -1   # byte offset of the current bit-field unit
        unit_bits = 0

        for idx, f in enumerate(self.fields):
            f.index = idx
            if f.is_bitfield:
                base = f.type
                if not base.is_integer():
                    raise TypeError_(
                        f"bit-field {f.name} must have integer type")
                if f.bit_width > 8 * base.size:
                    raise TypeError_(
                        f"bit-field {f.name} wider than its type")
                fits = (
                    bit_cursor >= 0
                    and unit_bits == 8 * base.size
                    and bit_cursor + f.bit_width <= unit_bits
                )
                if not fits:
                    offset = _round_up(offset, base.align)
                    unit_start = offset
                    unit_bits = 8 * base.size
                    bit_cursor = 0
                    offset += base.size
                f.offset = unit_start
                f.bit_offset = bit_cursor
                bit_cursor += f.bit_width
                max_align = max(max_align, base.align)
            else:
                bit_cursor = -1
                offset = _round_up(offset, f.type.align)
                f.offset = offset
                f.bit_offset = 0
                offset += f.type.size
                max_align = max(max_align, f.type.align)

        self._align = max_align
        self._size = _round_up(max(offset, 1), max_align) if self.fields else 0
        self._laid_out = True

    @property
    def size(self) -> int:  # type: ignore[override]
        if not self._laid_out:
            self.layout()
        return self._size

    @property
    def align(self) -> int:  # type: ignore[override]
        if not self._laid_out:
            self.layout()
        return self._align

    # -- queries used by the analyses ----------------------------------

    def is_record(self) -> bool:
        return True

    def has_bitfields(self) -> bool:
        return any(f.is_bitfield for f in self.fields)

    def is_recursive(self) -> bool:
        """True when some field (transitively through pointers) points back
        to this record — the shape that forces splitting over peeling."""
        for f in self.fields:
            t = f.type.strip()
            while t.is_pointer():
                t = t.pointee.strip()
            if t is self:
                return True
        return False

    def nested_records(self) -> list["RecordType"]:
        """Record types embedded by value (directly or via arrays)."""
        out = []
        for f in self.fields:
            t = f.type.strip()
            while t.is_array():
                t = t.elem.strip()
            if t.is_record():
                out.append(t)
        return out

    def field_at_offset(self, offset: int) -> Field | None:
        for f in self.fields:
            if f.offset <= offset < f.offset + max(f.type.size, 1):
                return f
        return None

    def __str__(self) -> str:
        return f"struct {self.name}"

    def definition(self) -> str:
        """Render a C-style definition (used by examples and the advisor)."""
        lines = [f"struct {self.name} {{"]
        for f in self.fields:
            lines.append(f"    {f};  /* offset {f.offset} */")
        lines.append("};")
        return "\n".join(lines)


@dataclass(frozen=True)
class NamedType(Type):
    """A typedef: a name bound to an underlying type."""

    name: str = ""
    aliased: Type = None  # type: ignore[assignment]

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.aliased.size

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.aliased.align

    def strip(self) -> Type:
        return self.aliased.strip()

    def is_scalar(self) -> bool:
        return self.aliased.is_scalar()

    def is_integer(self) -> bool:
        return self.aliased.is_integer()

    def is_float(self) -> bool:
        return self.aliased.is_float()

    def is_pointer(self) -> bool:
        return self.aliased.is_pointer()

    def is_record(self) -> bool:
        return self.aliased.is_record()

    def is_array(self) -> bool:
        return self.aliased.is_array()

    def is_void(self) -> bool:
        return self.aliased.is_void()

    def is_function(self) -> bool:
        return self.aliased.is_function()

    def __str__(self) -> str:
        return self.name


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


# Canonical scalar instances (LP64 / Itanium).
VOID = VoidType()
CHAR = IntType("char", 1, 1, True)
UCHAR = IntType("unsigned char", 1, 1, False)
SHORT = IntType("short", 2, 2, True)
USHORT = IntType("unsigned short", 2, 2, False)
INT = IntType("int", 4, 4, True)
UINT = IntType("unsigned int", 4, 4, False)
LONG = IntType("long", 8, 8, True)
ULONG = IntType("unsigned long", 8, 8, False)
FLOAT = FloatType("float", 4, 4)
DOUBLE = FloatType("double", 8, 8)
VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)

#: lookup used by the parser for builtin type names
BUILTIN_TYPES: dict[str, Type] = {
    "void": VOID,
    "char": CHAR,
    "unsigned char": UCHAR,
    "short": SHORT,
    "unsigned short": USHORT,
    "int": INT,
    "unsigned int": UINT,
    "unsigned": UINT,
    "long": LONG,
    "unsigned long": ULONG,
    "float": FLOAT,
    "double": DOUBLE,
}


def pointer_to(t: Type) -> PointerType:
    return PointerType(t)


def array_of(t: Type, n: int) -> ArrayType:
    return ArrayType(t, n)


def common_arithmetic_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions, simplified: float beats int, wider
    beats narrower, unsigned beats signed at equal width."""
    a, b = a.strip(), b.strip()
    if a.is_pointer():
        return a
    if b.is_pointer():
        return b
    if a.is_float() or b.is_float():
        if a.is_float() and b.is_float():
            return a if a.size >= b.size else b
        return a if a.is_float() else b
    if not (a.is_integer() and b.is_integer()):
        raise TypeError_(f"no common type for {a} and {b}")
    if a.size != b.size:
        wide = a if a.size > b.size else b
        if wide.size < 4:
            return INT
        return wide
    if a.size < 4:
        return INT
    if a.signed == b.signed:
        return a
    return a if not a.signed else b
