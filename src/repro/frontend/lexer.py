"""Tokenizer for the MiniC language.

MiniC is the C subset the reproduction compiles: enough of C to express
the paper's benchmarks and to exercise every legality test (casts,
address-of-field, libc escapes, indirect calls, memset/memcpy, nested
structs, bit-fields).  There is no preprocessor; ``//`` and ``/* */``
comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "struct", "typedef", "if", "else", "while",
    "do", "for", "return", "break", "continue", "sizeof", "static",
    "const", "extern", "NULL",
})

# Longest-match-first multi-character operators.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ",", ";", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str          # 'id', 'kw', 'int', 'float', 'char', 'str', 'op', 'eof'
    text: str
    line: int
    col: int
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Tokenize MiniC source, returning a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(f"{filename}: {msg}", line, col)

    while i < n:
        c = source[i]

        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue

        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        start_line, start_col = line, col

        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, start_line, start_col))
            col += j - i
            i = j
            continue

        # numbers
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                text = source[i:j]
                value: object = int(text, 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                text = source[i:j]
                value = float(text) if is_float else int(text)
            # suffixes
            while j < n and source[j] in "uUlLfF":
                if source[j] in "fF" and not is_float:
                    break
                j += 1
            full = source[i:j]
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, full, start_line, start_col, value))
            col += j - i
            i = j
            continue

        # character literal
        if c == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n:
                    raise error("unterminated character literal")
                ch = _unescape(source[j + 1])
                j += 2
            elif j < n:
                ch = source[j]
                j += 1
            else:
                raise error("unterminated character literal")
            if j >= n or source[j] != "'":
                raise error("unterminated character literal")
            j += 1
            tokens.append(Token("char", source[i:j], start_line, start_col,
                                ord(ch)))
            col += j - i
            i = j
            continue

        # string literal
        if c == '"':
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n:
                        raise error("unterminated string literal")
                    chars.append(_unescape(source[j + 1]))
                    j += 2
                elif source[j] == "\n":
                    raise error("newline in string literal")
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            j += 1
            tokens.append(Token("str", source[i:j], start_line, start_col,
                                "".join(chars)))
            col += j - i
            i = j
            continue

        # operators and punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {c!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"',
}


def _unescape(ch: str) -> str:
    return _ESCAPES.get(ch, ch)
