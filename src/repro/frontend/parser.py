"""Recursive-descent parser for MiniC.

Produces a :class:`~repro.frontend.ast.TranslationUnit`.  The parser keeps
a type environment (struct tags and typedef names) so it can distinguish
declarations from expressions and parse casts, exactly the information a
C parser needs.  Function pointers are supported through the
``ret (*name)(params)`` declarator form — they are what the paper's IND
legality test fires on.
"""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize
from .typesys import (
    BUILTIN_TYPES, RecordType, Field, NamedType, PointerType, ArrayType,
    FunctionType, Type,
)


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token
        self.line = token.line
        self.message = message


_BASE_TYPE_KWS = frozenset({
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed",
})


class Parser:
    def __init__(self, tokens: list[Token], unit_name: str = "<unit>",
                 recover: bool = False):
        self.tokens = tokens
        self.pos = 0
        self.unit_name = unit_name
        self.struct_tags: dict[str, RecordType] = {}
        self.typedefs: dict[str, NamedType] = {}
        #: error-recovery mode: collect ParseErrors in :attr:`errors`
        #: and resynchronize at the next top-level declaration instead
        #: of dying on the first syntax error
        self.recover = recover
        self.errors: list[ParseError] = []

    # -- token plumbing -------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        t = self.tok
        if t.kind != "eof":
            self.pos += 1
        return t

    def check(self, kind: str, text: str | None = None) -> bool:
        t = self.tok
        return t.kind == kind and (text is None or t.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self.tok)
        return self.advance()

    def error(self, msg: str) -> ParseError:
        return ParseError(msg, self.tok)

    # -- type recognition -----------------------------------------------

    def at_type(self) -> bool:
        t = self.tok
        if t.kind == "kw" and (t.text in _BASE_TYPE_KWS or t.text == "struct"
                               or t.text in ("const", "static", "extern")):
            return True
        return t.kind == "id" and t.text in self.typedefs

    def parse_type_specifier(self) -> Type:
        """Parse the base type: builtin combination, struct, or typedef."""
        while self.accept("kw", "const") or self.accept("kw", "static") \
                or self.accept("kw", "extern"):
            pass
        if self.check("kw", "struct"):
            return self._parse_struct_specifier()
        if self.tok.kind == "id" and self.tok.text in self.typedefs:
            return self.typedefs[self.advance().text]
        words: list[str] = []
        while self.tok.kind == "kw" and self.tok.text in _BASE_TYPE_KWS:
            words.append(self.advance().text)
        if not words:
            raise self.error("expected a type")
        return _resolve_base_type(words, self.tok)

    def _parse_struct_specifier(self) -> RecordType:
        self.expect("kw", "struct")
        tag = None
        if self.tok.kind == "id":
            tag = self.advance().text
        if self.check("op", "{"):
            if tag is None:
                tag = f"__anon_{self.tok.line}"
            rec = self.struct_tags.get(tag)
            if rec is None:
                rec = RecordType(tag)
                self.struct_tags[tag] = rec
            elif rec.fields:
                raise self.error(f"redefinition of struct {tag}")
            self._parse_struct_body(rec)
            return rec
        if tag is None:
            raise self.error("expected struct tag or body")
        rec = self.struct_tags.get(tag)
        if rec is None:
            rec = RecordType(tag)   # forward reference
            self.struct_tags[tag] = rec
        return rec

    def _parse_struct_body(self, rec: RecordType) -> None:
        self.expect("op", "{")
        while not self.check("op", "}"):
            base = self.parse_type_specifier()
            while True:
                ftype, fname = self.parse_declarator(base)
                width = None
                if self.accept("op", ":"):
                    width_tok = self.expect("int")
                    width = int(width_tok.value)
                rec.add_field(Field(fname, ftype, bit_width=width))
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        self.expect("op", "}")
        rec.layout()

    def parse_declarator(self, base: Type) -> tuple[Type, str]:
        """Parse pointers, the name, and array / function suffixes."""
        t = base
        while self.accept("op", "*"):
            t = PointerType(t)
        # function-pointer declarator: ( * name ) ( params )
        if self.check("op", "(") and self.peek().text == "*":
            self.expect("op", "(")
            self.expect("op", "*")
            name = self.expect("id").text
            self.expect("op", ")")
            params, varargs = self._parse_param_types()
            return PointerType(FunctionType(t, tuple(params), varargs)), name
        name = self.expect("id").text
        dims: list[int] = []
        while self.accept("op", "["):
            n_tok = self.expect("int")
            dims.append(int(n_tok.value))
            self.expect("op", "]")
        for n in reversed(dims):
            t = ArrayType(t, n)
        return t, name

    def parse_abstract_type(self) -> Type:
        """Type without a declarator name, for casts and sizeof."""
        t = self.parse_type_specifier()
        while self.accept("op", "*"):
            t = PointerType(t)
        return t

    def _parse_param_types(self) -> tuple[list[Type], bool]:
        self.expect("op", "(")
        params: list[Type] = []
        varargs = False
        if self.check("kw", "void") and self.peek().text == ")":
            self.advance()
        if not self.check("op", ")"):
            while True:
                if self.accept("op", "..."):
                    varargs = True
                    break
                pt = self.parse_type_specifier()
                while self.accept("op", "*"):
                    pt = PointerType(pt)
                if self.tok.kind == "id":
                    self.advance()
                params.append(pt)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params, varargs

    # -- top level --------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(name=self.unit_name)
        while not self.check("eof"):
            if self.recover and (self.accept("op", ";")
                                 or self.accept("op", "}")):
                continue             # stray recovery residue
            try:
                unit.decls.extend(self.parse_top_decl())
            except ParseError as err:
                if not self.recover:
                    raise
                self.errors.append(err)
                self._synchronize()
        return unit

    def _synchronize(self) -> None:
        """Skip to the most likely start of the next top-level
        declaration: past a ``;`` at brace depth zero, or past the
        closing ``}`` of the aborted definition."""
        depth = 0
        while not self.check("eof"):
            t = self.advance()
            if t.kind != "op":
                continue
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                if depth <= 1:
                    self.accept("op", ";")
                    return
                depth -= 1
            elif t.text == ";" and depth == 0:
                return

    def parse_top_decl(self) -> list[ast.Node]:
        line = self.tok.line
        if self.accept("kw", "typedef"):
            base = self.parse_type_specifier()
            t, name = self.parse_declarator(base)
            self.expect("op", ";")
            alias = NamedType(name, t)
            self.typedefs[name] = alias
            return [ast.TypedefDecl(line=line, name=name, aliased=t)]

        is_static = False
        while self.check("kw", "static") or self.check("kw", "extern") \
                or self.check("kw", "const"):
            if self.tok.text == "static":
                is_static = True
            self.advance()

        if self.check("kw", "struct") and self.peek().kind == "id" \
                and self.peek(2).text == "{":
            rec = self._parse_struct_specifier()
            if self.accept("op", ";"):
                return [ast.StructDecl(line=line, record=rec)]
            # struct definition followed by declarators: fall through
            decls: list[ast.Node] = [ast.StructDecl(line=line, record=rec)]
            decls.extend(self._parse_init_declarators(rec, line, is_static))
            return decls

        base = self.parse_type_specifier()

        # bare type declaration: "struct s;" (forward declaration)
        if self.accept("op", ";"):
            return []

        # function definition / declaration?  (a '(' after the declarator
        # name is a parameter list — function-pointer declarators have
        # already consumed theirs inside parse_declarator)
        save = self.pos
        t, name = self.parse_declarator(base)
        if self.check("op", "("):
            return [self._parse_function(t, name, line, is_static)]
        self.pos = save
        return self._parse_init_declarators(base, line, is_static)

    def _parse_init_declarators(self, base: Type, line: int,
                                is_static: bool) -> list[ast.Node]:
        decls: list[ast.Node] = []
        while True:
            t, name = self.parse_declarator(base)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            decls.append(ast.GlobalVar(line=line, name=name, decl_type=t,
                                       init=init, is_static=is_static))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def _parse_function(self, ret: Type, name: str, line: int,
                        is_static: bool) -> ast.FunctionDef:
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.check("op", ")"):
            if self.check("kw", "void") and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    pline = self.tok.line
                    pbase = self.parse_type_specifier()
                    ptype, pname = self.parse_declarator(pbase)
                    if ptype.is_array():
                        ptype = PointerType(ptype.strip().elem)
                    params.append(ast.Param(line=pline, name=pname,
                                            type=ptype))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = None
        if self.check("op", "{"):
            body = self.parse_block()
        else:
            self.expect("op", ";")
        return ast.FunctionDef(line=line, name=name, ret_type=ret,
                               params=params, body=body, is_static=is_static)

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.check("op", "}"):
            stmts.extend(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(line=line, stmts=stmts)

    def parse_statement(self) -> list[ast.Stmt]:
        line = self.tok.line
        if self.check("op", "{"):
            return [self.parse_block()]
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            then = _single(self.parse_statement())
            els = None
            if self.accept("kw", "else"):
                els = _single(self.parse_statement())
            return [ast.If(line=line, cond=cond, then=then, els=els)]
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            body = _single(self.parse_statement())
            return [ast.While(line=line, cond=cond, body=body)]
        if self.accept("kw", "do"):
            body = _single(self.parse_statement())
            self.expect("kw", "while")
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return [ast.DoWhile(line=line, body=body, cond=cond)]
        if self.accept("kw", "for"):
            self.expect("op", "(")
            init: ast.Stmt | None = None
            if not self.check("op", ";"):
                if self.at_type():
                    init = _single(self.parse_decl_statement())
                else:
                    init = ast.ExprStmt(line=line,
                                        expr=self.parse_expression())
                    self.expect("op", ";")
            else:
                self.expect("op", ";")
            cond = None
            if not self.check("op", ";"):
                cond = self.parse_expression()
            self.expect("op", ";")
            step = None
            if not self.check("op", ")"):
                step = self.parse_expression()
            self.expect("op", ")")
            body = _single(self.parse_statement())
            return [ast.For(line=line, init=init, cond=cond, step=step,
                            body=body)]
        if self.accept("kw", "return"):
            value = None
            if not self.check("op", ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return [ast.Return(line=line, value=value)]
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return [ast.Break(line=line)]
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return [ast.Continue(line=line)]
        if self.accept("op", ";"):
            return []
        if self.at_type():
            return self.parse_decl_statement()
        expr = self.parse_expression()
        self.expect("op", ";")
        return [ast.ExprStmt(line=line, expr=expr)]

    def parse_decl_statement(self) -> list[ast.Stmt]:
        line = self.tok.line
        base = self.parse_type_specifier()
        out: list[ast.Stmt] = []
        while True:
            t, name = self.parse_declarator(base)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            out.append(ast.DeclStmt(line=line, name=name, decl_type=t,
                                    init=init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return out

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        first = self.parse_assignment()
        if not self.check("op", ","):
            return first
        parts = [first]
        while self.accept("op", ","):
            parts.append(self.parse_assignment())
        return ast.Comma(line=first.line, parts=parts)

    _ASSIGN_OPS = frozenset(
        {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        if self.tok.kind == "op" and self.tok.text in self._ASSIGN_OPS:
            op = self.advance().text
            right = self.parse_assignment()
            return ast.Assign(line=left.line, op=op, target=left, value=right)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            els = self.parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond, then=then,
                                   els=els)
        return cond

    _PRECEDENCE = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        left = self.parse_binary(level + 1)
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance().text
            right = self.parse_binary(level + 1)
            left = ast.Binary(line=left.line, op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        line = self.tok.line
        if self.accept("op", "-"):
            return ast.Unary(line=line, op="-", operand=self.parse_unary())
        if self.accept("op", "+"):
            return self.parse_unary()
        if self.accept("op", "!"):
            return ast.Unary(line=line, op="!", operand=self.parse_unary())
        if self.accept("op", "~"):
            return ast.Unary(line=line, op="~", operand=self.parse_unary())
        if self.accept("op", "*"):
            return ast.Unary(line=line, op="*", operand=self.parse_unary())
        if self.accept("op", "&"):
            return ast.Unary(line=line, op="&", operand=self.parse_unary())
        if self.accept("op", "++"):
            return ast.Unary(line=line, op="++", operand=self.parse_unary())
        if self.accept("op", "--"):
            return ast.Unary(line=line, op="--", operand=self.parse_unary())
        if self.accept("kw", "sizeof"):
            if self.check("op", "(") and self._type_follows_paren():
                self.expect("op", "(")
                t = self.parse_abstract_type()
                self.expect("op", ")")
                return ast.SizeofType(line=line, of=t)
            return ast.SizeofExpr(line=line, operand=self.parse_unary())
        # cast
        if self.check("op", "(") and self._type_follows_paren():
            self.expect("op", "(")
            t = self.parse_abstract_type()
            self.expect("op", ")")
            return ast.Cast(line=line, to=t, operand=self.parse_unary())
        return self.parse_postfix()

    def _type_follows_paren(self) -> bool:
        nxt = self.peek()
        if nxt.kind == "kw" and (nxt.text in _BASE_TYPE_KWS
                                 or nxt.text in ("struct", "const")):
            return True
        return nxt.kind == "id" and nxt.text in self.typedefs

    def parse_postfix(self) -> ast.Expr:
        e = self.parse_primary()
        while True:
            line = self.tok.line
            if self.accept("op", "["):
                idx = self.parse_expression()
                self.expect("op", "]")
                e = ast.Index(line=line, base=e, index=idx)
            elif self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                e = ast.Call(line=line, func=e, args=args)
            elif self.accept("op", "."):
                name = self.expect("id").text
                e = ast.Member(line=line, base=e, name=name, arrow=False)
            elif self.accept("op", "->"):
                name = self.expect("id").text
                e = ast.Member(line=line, base=e, name=name, arrow=True)
            elif self.accept("op", "++"):
                e = ast.Unary(line=line, op="p++", operand=e)
            elif self.accept("op", "--"):
                e = ast.Unary(line=line, op="p--", operand=e)
            else:
                return e

    def parse_primary(self) -> ast.Expr:
        t = self.tok
        if t.kind == "int" or t.kind == "char":
            self.advance()
            return ast.IntLit(line=t.line, value=int(t.value))
        if t.kind == "float":
            self.advance()
            return ast.FloatLit(line=t.line, value=float(t.value))
        if t.kind == "str":
            self.advance()
            return ast.StrLit(line=t.line, value=str(t.value))
        if t.kind == "kw" and t.text == "NULL":
            self.advance()
            return ast.NullLit(line=t.line)
        if t.kind == "id":
            self.advance()
            return ast.Ident(line=t.line, name=t.text)
        if self.accept("op", "("):
            e = self.parse_expression()
            self.expect("op", ")")
            return e
        raise self.error("expected an expression")


def _single(stmts: list[ast.Stmt]) -> ast.Stmt:
    if len(stmts) == 1:
        return stmts[0]
    return ast.Block(line=stmts[0].line if stmts else 0, stmts=stmts)


def _resolve_base_type(words: list[str], tok: Token) -> Type:
    unsigned = "unsigned" in words
    words = [w for w in words if w not in ("unsigned", "signed")]
    key = " ".join(words) if words else "int"
    if key == "long long":
        key = "long"
    if key == "long int":
        key = "long"
    if key == "short int":
        key = "short"
    if unsigned:
        key = f"unsigned {key}" if key != "int" else "unsigned int"
    t = BUILTIN_TYPES.get(key)
    if t is None:
        raise ParseError(f"unknown type {' '.join(words)!r}", tok)
    return t


def parse(source: str, unit_name: str = "<unit>") -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(tokenize(source, unit_name), unit_name) \
        .parse_translation_unit()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (testing convenience)."""
    p = Parser(tokenize(source))
    e = p.parse_expression()
    p.expect("eof")
    return e
