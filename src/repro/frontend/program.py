"""Whole-program container: the IPA compilation scope.

A :class:`Program` aggregates one or more translation units, a type-unified
record-type table, and the program-level symbol table.  Struct tags and
typedefs are shared across units (as if every unit included the same
headers), which is how the paper's IPA phase unifies types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .lexer import LexError, tokenize
from .parser import ParseError, Parser
from .sema import SemaError, SemanticAnalyzer
from .symbols import ProgramSymbols, FunctionSymbol, Symbol
from .typesys import RecordType, NamedType


@dataclass
class FrontendError:
    """One recovered frontend error: which unit, where, and what."""

    unit: str
    line: int
    message: str
    kind: str = "parse"          # lex | parse | sema

    def __str__(self) -> str:
        return f"{self.unit}:{self.line}: {self.message}"


@dataclass
class Program:
    units: list[ast.TranslationUnit] = field(default_factory=list)
    symbols: ProgramSymbols = field(default_factory=ProgramSymbols)
    records: dict[str, RecordType] = field(default_factory=dict)
    typedefs: dict[str, NamedType] = field(default_factory=dict)
    #: frontend errors collected in ``recover`` mode (empty otherwise)
    frontend_errors: list[FrontendError] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: list[tuple[str, str]],
                     recover: bool = False, *,
                     jobs: int = 1) -> "Program":
        """Build a program from ``[(unit_name, source_text), ...]``.

        With ``recover=True`` the frontend does not raise on broken
        input: the parser resynchronizes after each syntax error so
        *all* errors in a unit are reported, and every lex/parse/sema
        error is collected into :attr:`frontend_errors` (units that
        fail semantic analysis are dropped from the program).

        With ``jobs > 1`` units are parsed by a worker pool and unified
        afterwards (falling back to this serial path whenever the
        isolated-parse scheme cannot reproduce it exactly); the result
        is identical to ``jobs=1``.  Requires ``recover=True``
        semantics and therefore implies them.
        """
        if jobs != 1:
            from ..core.fe import assemble_program
            program, _ = assemble_program(list(sources), jobs=jobs,
                                          recover=True)
            return program
        prog = cls()
        sema = SemanticAnalyzer(prog.symbols)
        for unit_name, text in sources:
            try:
                tokens = tokenize(text, unit_name)
            except LexError as err:
                if not recover:
                    raise
                prog.frontend_errors.append(FrontendError(
                    unit=unit_name, line=err.line, message=str(err),
                    kind="lex"))
                continue
            parser = Parser(tokens, unit_name, recover=recover)
            parser.struct_tags = prog.records
            parser.typedefs = prog.typedefs
            unit = parser.parse_translation_unit()
            prog.frontend_errors.extend(FrontendError(
                unit=unit_name, line=err.line, message=err.message)
                for err in parser.errors)
            try:
                sema.analyze(unit)
            except SemaError as err:
                if not recover:
                    raise
                prog.frontend_errors.append(FrontendError(
                    unit=unit_name, line=getattr(err, "line", 0),
                    message=str(err), kind="sema"))
                continue
            prog.units.append(unit)
        return prog

    @classmethod
    def from_source(cls, text: str, unit_name: str = "main.c",
                    recover: bool = False) -> "Program":
        return cls.from_sources([(unit_name, text)], recover=recover)

    # -- queries -------------------------------------------------------------

    def functions(self) -> list[ast.FunctionDef]:
        out: list[ast.FunctionDef] = []
        for unit in self.units:
            out.extend(unit.functions())
        return out

    def function(self, name: str) -> ast.FunctionDef:
        for fn in self.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r}")

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions())

    def globals(self) -> list[ast.GlobalVar]:
        out: list[ast.GlobalVar] = []
        for unit in self.units:
            out.extend(unit.globals())
        return out

    def record_types(self) -> list[RecordType]:
        """All record types in the program, in definition order."""
        return list(self.records.values())

    def record(self, name: str) -> RecordType:
        return self.records[name]

    def function_symbol(self, name: str) -> FunctionSymbol | None:
        return self.symbols.functions.get(name)

    def global_symbol(self, name: str) -> Symbol | None:
        return self.symbols.globals.get(name)
