"""Whole-program container: the IPA compilation scope.

A :class:`Program` aggregates one or more translation units, a type-unified
record-type table, and the program-level symbol table.  Struct tags and
typedefs are shared across units (as if every unit included the same
headers), which is how the paper's IPA phase unifies types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .lexer import tokenize
from .parser import Parser
from .sema import SemanticAnalyzer
from .symbols import ProgramSymbols, FunctionSymbol, Symbol
from .typesys import RecordType, NamedType


@dataclass
class Program:
    units: list[ast.TranslationUnit] = field(default_factory=list)
    symbols: ProgramSymbols = field(default_factory=ProgramSymbols)
    records: dict[str, RecordType] = field(default_factory=dict)
    typedefs: dict[str, NamedType] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: list[tuple[str, str]]) -> "Program":
        """Build a program from ``[(unit_name, source_text), ...]``."""
        prog = cls()
        sema = SemanticAnalyzer(prog.symbols)
        for unit_name, text in sources:
            parser = Parser(tokenize(text, unit_name), unit_name)
            parser.struct_tags = prog.records
            parser.typedefs = prog.typedefs
            unit = parser.parse_translation_unit()
            sema.analyze(unit)
            prog.units.append(unit)
        return prog

    @classmethod
    def from_source(cls, text: str, unit_name: str = "main.c") -> "Program":
        return cls.from_sources([(unit_name, text)])

    # -- queries -------------------------------------------------------------

    def functions(self) -> list[ast.FunctionDef]:
        out: list[ast.FunctionDef] = []
        for unit in self.units:
            out.extend(unit.functions())
        return out

    def function(self, name: str) -> ast.FunctionDef:
        for fn in self.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r}")

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions())

    def globals(self) -> list[ast.GlobalVar]:
        out: list[ast.GlobalVar] = []
        for unit in self.units:
            out.extend(unit.globals())
        return out

    def record_types(self) -> list[RecordType]:
        """All record types in the program, in definition order."""
        return list(self.records.values())

    def record(self, name: str) -> RecordType:
        return self.records[name]

    def function_symbol(self, name: str) -> FunctionSymbol | None:
        return self.symbols.functions.get(name)

    def global_symbol(self, name: str) -> Symbol | None:
        return self.symbols.globals.get(name)
