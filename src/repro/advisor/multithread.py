"""Multi-threaded layout advice (§2.4 / §3.3 future work).

The paper: "For multi-threaded applications a different set of
heuristics can be applied.  For example, there is a performance penalty
if two threads access (write) disjoint hot structure fields on the same
cache line due to costs associated with cache coherency.  These fields
should be separated to different cache lines ... fields should
additionally be grouped by read and write counts to minimize
inter-processor cache coherency costs.  While we perform read/write
analysis, we do not currently consult these values in our heuristics."

This module consults them.  Given a type's profile (the same weighted
read/write counts and affinity graph the single-threaded path uses), it

- classifies fields as read-mostly / write-heavy / mixed,
- flags *false-sharing candidates*: pairs of write-heavy fields with
  low mutual affinity (likely touched by different threads) that the
  current layout places on the same cache line, and
- proposes a layout: read-mostly fields packed together, write-heavy
  affinity clusters separated onto their own cache lines via padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..profit.affinity import TypeProfile
from .classify import affinity_clusters


@dataclass
class MTParams:
    #: a field is write-heavy when writes reach this share of accesses
    #: (0.4: read-modify-write counters land just under 0.5, and for
    #: coherency purposes any steady writer invalidates the line)
    write_share: float = 0.4
    #: pairs below this fraction of the max affinity edge count as
    #: "not used together" (thread-disjoint candidates)
    low_affinity: float = 0.2
    #: coherency granularity
    line_size: int = 128
    #: only fields above this relative hotness matter (%)
    hot_threshold: float = 10.0


@dataclass
class FalseSharingCandidate:
    field_a: str
    field_b: str
    line: int          # the shared cache line's index within the struct

    def __repr__(self) -> str:
        return f"<false-sharing {self.field_a}/{self.field_b} " \
               f"line {self.line}>"


@dataclass
class MTAdvice:
    read_mostly: list[str] = dc_field(default_factory=list)
    write_heavy: list[str] = dc_field(default_factory=list)
    mixed: list[str] = dc_field(default_factory=list)
    false_sharing: list[FalseSharingCandidate] = \
        dc_field(default_factory=list)
    #: proposed layout: groups in order; each write-heavy group is
    #: intended to start a fresh cache line
    layout_groups: list[list[str]] = dc_field(default_factory=list)


def rw_class(profile: TypeProfile, fname: str,
             params: MTParams) -> str:
    reads = profile.read_counts.get(fname, 0.0)
    writes = profile.write_counts.get(fname, 0.0)
    total = reads + writes
    if total <= 0.0:
        return "unused"
    share = writes / total
    if share >= params.write_share:
        return "write-heavy"
    if share <= 1.0 - params.write_share:
        return "read-mostly"
    return "mixed"


def false_sharing_candidates(profile: TypeProfile,
                             params: MTParams
                             ) -> list[FalseSharingCandidate]:
    """Write-heavy, mutually non-affine hot field pairs sharing a line
    under the *current* layout."""
    rec = profile.record
    rel = profile.relative_hotness()
    pair_weights = {k: w for k, w in profile.affinity.items()
                    if k[0] != k[1]}
    peak = max(pair_weights.values(), default=0.0)
    writers = [f for f in rec.fields
               if rw_class(profile, f.name, params) == "write-heavy"
               and rel.get(f.name, 0.0) >= params.hot_threshold]
    out = []
    for i, fa in enumerate(writers):
        for fb in writers[i + 1:]:
            aff = profile.affinity_between(fa.name, fb.name)
            frac = aff / peak if peak > 0.0 else 0.0
            if frac > params.low_affinity:
                continue          # used together: same thread, fine
            if fa.offset // params.line_size == \
                    fb.offset // params.line_size:
                out.append(FalseSharingCandidate(
                    fa.name, fb.name,
                    fa.offset // params.line_size))
    return out


def advise_multithreaded(profile: TypeProfile,
                         params: MTParams | None = None) -> MTAdvice:
    """Full multi-threaded layout advice for one type."""
    params = params or MTParams()
    advice = MTAdvice()
    rec = profile.record
    for f in rec.fields:
        cls = rw_class(profile, f.name, params)
        if cls == "read-mostly":
            advice.read_mostly.append(f.name)
        elif cls == "write-heavy":
            advice.write_heavy.append(f.name)
        elif cls == "mixed":
            advice.mixed.append(f.name)
    advice.false_sharing = false_sharing_candidates(profile, params)

    # proposed layout: read-mostly + mixed + unused first (sharing
    # lines among readers is free), then each write-heavy affinity
    # cluster on its own line
    writers = set(advice.write_heavy)
    reader_group = [f.name for f in rec.fields if f.name not in writers]
    advice.layout_groups = []
    if reader_group:
        advice.layout_groups.append(reader_group)
    clusters = affinity_clusters(profile, params.low_affinity)
    placed: set[str] = set()
    for cluster in clusters:
        w = [f for f in cluster if f in writers]
        if w:
            advice.layout_groups.append(w)
            placed.update(w)
    leftover = [f for f in advice.write_heavy if f not in placed]
    for f in leftover:
        advice.layout_groups.append([f])
    return advice


def mt_report(profile: TypeProfile,
              params: MTParams | None = None) -> str:
    """Human-readable multi-threaded advice."""
    advice = advise_multithreaded(profile, params)
    lines = [f"Multi-threaded layout advice for struct "
             f"{profile.record.name}:"]
    lines.append(f"  read-mostly : {', '.join(advice.read_mostly) or '-'}")
    lines.append(f"  write-heavy : {', '.join(advice.write_heavy) or '-'}")
    lines.append(f"  mixed       : {', '.join(advice.mixed) or '-'}")
    if advice.false_sharing:
        lines.append("  false-sharing candidates:")
        for c in advice.false_sharing:
            lines.append(f"    {c.field_a} / {c.field_b} share line "
                         f"{c.line}; separate them")
    else:
        lines.append("  no false-sharing candidates")
    lines.append("  proposed line groups (pad between groups):")
    for g in advice.layout_groups:
        lines.append(f"    [{', '.join(g)}]")
    return "\n".join(lines)
