"""VCG graph output for affinity graphs (§3.2).

"Sometimes a graphical representation is helpful.  For this purpose we
also output control files for the VCG graph visualization tool and use
colors and line-thickness to indicate higher relative weights and
affinities."  This module emits that VCG text format (GDL), one graph
per record type: node color encodes relative field hotness, edge
thickness encodes relative affinity.
"""

from __future__ import annotations

from ..profit.affinity import TypeProfile

#: VCG color indices, coldest to hottest
_COLORS = ["lightblue", "lightcyan", "lightgreen", "yellow",
           "orange", "red"]


def _color_for(percent: float) -> str:
    idx = min(int(percent / 100.0 * len(_COLORS)), len(_COLORS) - 1)
    return _COLORS[idx]


def _thickness_for(fraction: float) -> int:
    return 1 + min(int(fraction * 4.0), 4)


def affinity_vcg(profile: TypeProfile, title: str | None = None) -> str:
    """Render one type's affinity graph as a VCG control file."""
    rec = profile.record
    rel = profile.relative_hotness()
    peak_aff = max((w for (a, b), w in profile.affinity.items()
                    if a != b), default=0.0)
    lines = [
        "graph: {",
        f'    title: "{title or "affinity " + rec.name}"',
        "    layoutalgorithm: forcedir",
        "    display_edge_labels: yes",
    ]
    for f in rec.fields:
        pct = rel.get(f.name, 0.0)
        lines.append(
            f'    node: {{ title: "{f.name}" '
            f'label: "{f.name}\\n{pct:.1f}%" '
            f'color: {_color_for(pct)} }}')
    for (f1, f2), w in sorted(profile.affinity.items()):
        if f1 == f2 or w <= 0.0:
            continue
        frac = w / peak_aff if peak_aff > 0.0 else 0.0
        lines.append(
            f'    edge: {{ sourcename: "{f1}" targetname: "{f2}" '
            f'label: "{100.0 * frac:.0f}%" '
            f'thickness: {_thickness_for(frac)} }}')
    lines.append("}")
    return "\n".join(lines) + "\n"


def program_vcg(profiles: dict[str, TypeProfile]) -> str:
    """All per-type affinity graphs concatenated into one file."""
    parts = [affinity_vcg(p) for p in profiles.values()
             if p.record.fields]
    return "\n".join(parts)
