"""The advisory tool: annotated layouts, VCG graphs, scenario advice."""

from .report import (
    advisor_report, format_type_report, AdvisorOptions, hotness_bar, rw_bar,
    phase_cost_footer, search_delta_section,
)
from .vcg import affinity_vcg, program_vcg
from .classify import (
    Advice, ClassifierParams, affinity_clusters, classify_type,
    classify_report, group_affinity,
)

__all__ = [
    "advisor_report", "format_type_report", "AdvisorOptions",
    "phase_cost_footer", "search_delta_section",
    "hotness_bar", "rw_bar",
    "affinity_vcg", "program_vcg",
    "Advice", "ClassifierParams", "affinity_clusters", "classify_type",
    "classify_report", "group_affinity",
]

from .multithread import (
    MTParams, MTAdvice, FalseSharingCandidate, advise_multithreaded,
    mt_report, rw_class, false_sharing_candidates,
)

__all__ += [
    "MTParams", "MTAdvice", "FalseSharingCandidate",
    "advise_multithreaded", "mt_report", "rw_class",
    "false_sharing_candidates",
]
