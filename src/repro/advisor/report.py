"""The advisory tool's annotated type-layout report (§3.2, Figure 2).

IPA prints, for every structure type sorted by type hotness: the type's
name, field count, size, relative/absolute hotness, the planned (or
blocked) transformation and its legality status; then each field in
declaration order with its hotness bar, weighted read/write counts and
R/w balance bar, attributed d-cache miss count and average latency, and
its affinities to later fields (uni-directional edges only, to keep the
output compact).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.deadfields import UsageResult
from ..analysis.legality import LegalityResult
from ..core.pipeline import CompilationResult
from ..profit.affinity import TypeProfile
from ..profit.feedback import FeedbackFile

BAR_WIDTH = 10
RW_BAR_WIDTH = 8


def hotness_bar(percent: float, width: int = BAR_WIDTH) -> str:
    filled = round(width * min(max(percent, 0.0), 100.0) / 100.0)
    return "|" + "#" * filled + "-" * (width - filled) + "|"


def rw_bar(reads: float, writes: float, width: int = RW_BAR_WIDTH) -> str:
    """The paper's read/write balance bar: uppercase for the majority
    side ('R…w' when reads dominate, 'r…W' otherwise)."""
    total = reads + writes
    if total <= 0.0:
        return "|" + " " * width + "|"
    r_chars = round(width * reads / total)
    r_chars = min(max(r_chars, 0), width)
    if reads >= writes:
        return "|" + "R" * r_chars + "w" * (width - r_chars) + "|"
    return "|" + "r" * r_chars + "W" * (width - r_chars) + "|"


@dataclass
class AdvisorOptions:
    #: show at most this many types (None = all)
    max_types: int | None = None
    #: skip types with zero hotness
    skip_cold_types: bool = False
    #: append the per-phase compile-cost footer (wall time per phase,
    #: hottest passes).  Off by default: the footer contains wall-clock
    #: numbers, and default reports must stay deterministic (the
    #: service's serial-vs-daemon parity depends on it).
    phase_costs: bool = False


def format_type_report(profile: TypeProfile, legality: LegalityResult,
                       usage: UsageResult,
                       feedback: FeedbackFile | None = None,
                       transform_label: str = "None",
                       rel_type_hotness: float = 100.0,
                       abs_type_hotness: float = 100.0) -> str:
    """Render one type's annotated layout."""
    rec = profile.record
    info = legality.types.get(rec.name)
    u = usage.types.get(rec.name)
    rel = profile.relative_hotness()
    total = profile.type_hotness()

    status = "*OK*" if info is not None and info.is_legal() else \
        "/".join(sorted(info.invalid_reasons)) if info is not None else "?"
    attrs = " ".join(info.attributes()) if info is not None else ""

    samples = feedback.field_samples if feedback is not None else {}
    type_misses = sum(s.misses for (r, f), s in samples.items()
                      if r == rec.name)

    lines = [
        f"Type     : {rec.name}",
        f"Fields   : {len(rec.fields)}, {rec.size} bytes",
        f"Hotness  : {rel_type_hotness:.1f}% rel, "
        f"{abs_type_hotness:.1f}% abs",
        f"Transform: {transform_label}",
        f"Status   : {status} / {attrs}".rstrip(" /"),
        "-" * 69,
    ]

    field_names = [f.name for f in rec.fields]
    for f in rec.fields:
        pct = rel.get(f.name, 0.0)
        offset = f"{f.offset}:{f.bit_offset}"
        header = (f"Field[{f.index}] off: {offset:>5s} "
                  f"{hotness_bar(pct)} \"{f.name}\"")
        refs = u.of(f.name) if u is not None else None
        if refs is not None and not refs.referenced:
            lines.append(header + "  *unused*")
            continue
        lines.append(header)
        weight = profile.hotness(f.name)
        lines.append(f"  hot: {pct:5.1f}%  weight: {weight:.3e}")
        reads = profile.read_counts.get(f.name, 0.0)
        writes = profile.write_counts.get(f.name, 0.0)
        lines.append(f"  read : {reads:.3e}, write: {writes:.3e}  "
                     f"{rw_bar(reads, writes)}")
        sample = samples.get((rec.name, f.name))
        if sample is not None:
            share = (100.0 * sample.misses / type_misses) \
                if type_misses else 0.0
            lines.append(f"  miss : {sample.misses}, {share:.1f}%, "
                         f"lat: {sample.avg_latency:.1f} [cyc]")
        # uni-directional affinity edges, in declaration order
        later = field_names[f.index:]
        affs = profile.relative_affinities(f.name)
        for other in later:
            if other in affs:
                lines.append(f"  aff: {affs[other]:5.1f}% --> {other}")
    return "\n".join(lines)


def advisor_report(result: CompilationResult,
                   feedback: FeedbackFile | None = None,
                   options: AdvisorOptions | None = None) -> str:
    """The full report: every type, sorted by type hotness."""
    options = options or AdvisorOptions()
    profiles = result.profiles
    totals = {name: p.type_hotness() for name, p in profiles.items()}
    grand = sum(totals.values()) or 1.0
    peak = max(totals.values(), default=0.0) or 1.0

    # ties in hotness break on the type name, never on dict order —
    # report bytes must be identical across runs for a fixed seed
    order = sorted(profiles, key=lambda n: (-totals[n], n))
    if options.skip_cold_types:
        order = [n for n in order if totals[n] > 0.0]
    if options.max_types is not None:
        order = order[:options.max_types]

    sections = []
    for name in order:
        d = result.decision_for(name)
        label = "None"
        if d is not None and d.transformed:
            label = {"split": "Splitting", "peel": "Peeling",
                     "dead": "Dead Field Removal"}.get(d.action, d.action)
        sections.append(format_type_report(
            profiles[name], result.legality, result.usage,
            feedback=feedback, transform_label=label,
            rel_type_hotness=100.0 * totals[name] / peak,
            abs_type_hotness=100.0 * totals[name] / grand))
    header = (f"Structure layout advisory report "
              f"(scheme: {result.weights.scheme}, "
              f"{len(order)} of {len(profiles)} types)\n" + "=" * 69)
    report = header + "\n\n" + "\n\n".join(sections) + "\n"
    if result.search:
        report += "\n" + search_delta_section(result)
    if options.phase_costs:
        report += "\n" + phase_cost_footer(result)
    return report


def search_delta_section(result: CompilationResult) -> str:
    """Greedy-vs-search deltas, one block per searched type.

    Byte-deterministic for a fixed seed: types sort by name, the best
    layout is named by its content fingerprint (candidate ties inside
    the engine already broke on that fingerprint), and no wall-clock
    numbers appear — ``elapsed_s`` stays in the machine-readable
    stats only."""
    stats = result.search
    lines = ["layout search (greedy floor vs searched)", "-" * 69]
    tr = stats.get("_trace")
    if tr:
        suffix = " (truncated)" if tr.get("truncated") else ""
        lines.append(f"  oracle trace: {tr['ops']:,} accesses, "
                     f"{tr['cycles']:,} cycles{suffix}")
    for name in sorted(k for k in stats if not k.startswith("_")):
        s = stats[name]
        greedy, best = s["greedy_cycles"], s["best_cycles"]
        gain = 100.0 * (greedy / best - 1.0) if best else 0.0
        kept = "" if s["improved"] else "  [kept greedy]"
        lines.append(f"  {name:20s} {s['engine']:>6s}/{s['mode']:5s} "
                     f"greedy {greedy:,} -> best {best:,} "
                     f"({gain:+.2f}%){kept}")
        lines.append(f"    evals: {s['evals']}  "
                     f"memo hits: {s['memo_hits']}  "
                     f"cache hits: {s['cache_hits']}  "
                     f"best layout: {s['best_fingerprint']}")
    return "\n".join(lines) + "\n"


def phase_cost_footer(result: CompilationResult) -> str:
    """The per-phase compile-cost footer: phase wall time and the
    hottest guarded passes (with peak-RSS growth when the compile ran
    with a tracer and per-pass profiling is available).

    Phase timings are wall-clock *windows*: under ``--jobs N`` phases
    overlap, so they are normalized against the scheduler's measured
    compile wall rather than their own sum — percentages then say how
    much of the compile each phase actually spanned instead of
    double-counting concurrent work."""
    lines = ["per-phase compile cost", "-" * 69]
    sched = result.scheduler or {}
    wall = sched.get("wall_ms", 0.0) / 1e3
    total = wall or sum(result.timings.values()) or 1.0
    for phase in ("fe", "ipa", "be"):
        t = result.timings.get(phase)
        if t is None:
            continue
        lines.append(f"  {phase:4s} {t * 1e3:9.1f} ms  "
                     f"({100.0 * min(t, total) / total:5.1f}%)")
    if sched:
        lines.append(
            f"  dag  {sched.get('wall_ms', 0.0):9.1f} ms  "
            f"(jobs={sched.get('jobs', 1)}, "
            f"{sched.get('nodes', 0)} nodes, critical path "
            f"{sched.get('critical_path_ms', 0.0):.1f} ms)")
    # equal-time passes sort by name so the footer is byte-stable
    passes = sorted(result.pass_timings.items(),
                    key=lambda kv: (-kv[1], kv[0]))[:5]
    if passes:
        lines.append("  hottest passes:")
        for name, t in passes:
            extra = ""
            prof = result.pass_profile.get(name)
            if prof and prof.get("rss_kb_delta"):
                extra = f"  (+{prof['rss_kb_delta']} kB peak RSS)"
            lines.append(f"    {name:24s} {t * 1e3:9.1f} ms{extra}")
    return "\n".join(lines) + "\n"
