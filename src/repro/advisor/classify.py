"""§3.3: combining d-cache misses, hotness, and affinity into advice.

Given a type's profile (hotness + affinity) and its PMU samples, fields
are clustered into affinity groups and each group / group pair is
classified into the paper's scenarios:

1. two hot groups with low mutual affinity → split *conceptually at the
   source level* (link pointers would be prohibitive; the automatic
   framework cannot handle this case well);
2. two hot groups with high mutual affinity → keep/group them together,
   especially with a high d-cache component;
3. a cold group → split it out (the automatic transformations can
   usually do this);
4. a hot group with a high d-cache component → scheduling or
   data-structure complexity hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profit.affinity import TypeProfile
from ..runtime.machine import FieldSample


@dataclass
class Advice:
    kind: str                  # source-split | group | split-out | dcache
    fields: list[str]
    other_fields: list[str] = field(default_factory=list)
    message: str = ""

    def __repr__(self) -> str:
        return f"<advice {self.kind}: {self.fields} {self.message!r}>"


@dataclass
class ClassifierParams:
    #: a group is hot when its peak relative hotness exceeds this (%)
    hot_threshold: float = 30.0
    #: mutual affinity below this fraction of the max edge is "low"
    #: (one-shot initialization loops leave faint cross-edges, so this
    #: sits above the weight of a depth-1 loop relative to a hot one)
    low_affinity: float = 0.2
    #: mutual affinity above this fraction of the max edge is "high"
    high_affinity: float = 0.5
    #: miss share above this fraction marks a high d-cache component
    dcache_threshold: float = 0.25
    #: intra-group clustering threshold (fraction of max edge)
    cluster_threshold: float = 0.3


def affinity_clusters(profile: TypeProfile,
                      threshold_fraction: float = 0.3) -> list[list[str]]:
    """Union-find clustering of fields by affinity edges above the
    threshold; referenced fields only."""
    fields = [f.name for f in profile.record.fields
              if profile.hotness(f.name) > 0.0]
    pair_weights = {k: w for k, w in profile.affinity.items()
                    if k[0] != k[1]}
    peak = max(pair_weights.values(), default=0.0)
    cutoff = threshold_fraction * peak
    parent = {f: f for f in fields}

    def find(f: str) -> str:
        while parent[f] != f:
            parent[f] = parent[parent[f]]
            f = parent[f]
        return f

    for (f1, f2), w in pair_weights.items():
        if f1 in parent and f2 in parent and w >= cutoff and w > 0.0:
            parent[find(f1)] = find(f2)

    clusters: dict[str, list[str]] = {}
    for f in fields:
        clusters.setdefault(find(f), []).append(f)
    order = {f.name: f.index for f in profile.record.fields}
    groups = [sorted(g, key=order.get) for g in clusters.values()]
    groups.sort(key=lambda g: order[g[0]])
    return groups


def group_affinity(profile: TypeProfile, g1: list[str],
                   g2: list[str]) -> float:
    """Max cross-group affinity edge weight."""
    best = 0.0
    for f1 in g1:
        for f2 in g2:
            if f1 != f2:
                best = max(best, profile.affinity_between(f1, f2))
    return best


def classify_type(profile: TypeProfile,
                  samples: dict[str, FieldSample] | None = None,
                  params: ClassifierParams | None = None) -> list[Advice]:
    """Produce the §3.3 advice list for one type."""
    params = params or ClassifierParams()
    samples = samples or {}
    groups = affinity_clusters(profile, params.cluster_threshold)
    if not groups:
        return []

    rel = profile.relative_hotness()
    peak_edge = max((w for (a, b), w in profile.affinity.items()
                     if a != b), default=0.0)
    total_misses = sum(s.misses for s in samples.values()) or 0

    def group_hot(g: list[str]) -> float:
        return max(rel.get(f, 0.0) for f in g)

    def group_miss_share(g: list[str]) -> float:
        if not total_misses:
            return 0.0
        return sum(samples[f].misses for f in g if f in samples) \
            / total_misses

    advice: list[Advice] = []
    hot_groups = [g for g in groups
                  if group_hot(g) >= params.hot_threshold]
    cold_groups = [g for g in groups
                   if group_hot(g) < params.hot_threshold]

    # pairwise hot-group scenarios
    for i, g1 in enumerate(hot_groups):
        for g2 in hot_groups[i + 1:]:
            aff = group_affinity(profile, g1, g2)
            frac = aff / peak_edge if peak_edge > 0.0 else 0.0
            if frac <= params.low_affinity:
                advice.append(Advice(
                    kind="source-split", fields=list(g1),
                    other_fields=list(g2),
                    message=(
                        "both groups are hot but rarely used together; "
                        "split them at the source level (link pointers "
                        "would be prohibitive)")))
            elif frac >= params.high_affinity:
                dc = max(group_miss_share(g1), group_miss_share(g2))
                extra = " (high d-cache component: latencies may hide " \
                    "each other)" if dc >= params.dcache_threshold else ""
                advice.append(Advice(
                    kind="group", fields=list(g1),
                    other_fields=list(g2),
                    message="hot and used together; keep them on the "
                            "same cache line" + extra))

    # cold groups: candidates for (automatic) splitting out
    for g in cold_groups:
        advice.append(Advice(
            kind="split-out", fields=list(g),
            message="low hotness; split out (prefer a source-level "
                    "split over link pointers)"))

    # hot groups with a high d-cache component
    for g in hot_groups:
        if group_miss_share(g) >= params.dcache_threshold:
            advice.append(Advice(
                kind="dcache", fields=list(g),
                message="hot with a high d-cache component; check loop "
                        "scheduling or simplify the data structure"))
    return advice


def classify_report(profile: TypeProfile,
                    samples: dict[str, FieldSample] | None = None,
                    params: ClassifierParams | None = None) -> str:
    """Human-readable §3.3 advice for one type."""
    advice = classify_type(profile, samples, params)
    lines = [f"Advice for struct {profile.record.name}:"]
    if not advice:
        lines.append("  (no findings)")
    for a in advice:
        target = ", ".join(a.fields)
        if a.other_fields:
            target += " vs " + ", ".join(a.other_fields)
        lines.append(f"  [{a.kind}] {target}: {a.message}")
    return "\n".join(lines)
