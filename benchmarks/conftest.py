"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper and
prints it; assertions check the *shape* of the results (signs,
orderings, approximate factors), not absolute numbers — the substrate
is a simulator, not the authors' rx2600.

Expensive artifacts (compilations, feedback files, measured runs) are
cached per session so the tables can share them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import CompilerOptions, compile_program
from repro.ir import lower_program
from repro.profit import collect_feedback, sample_uninstrumented
from repro.runtime import run_program
from repro.workloads import ALL_WORKLOADS

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)


class Session:
    """Lazy, memoized access to per-workload artifacts."""

    def __init__(self):
        self._compiled: dict = {}
        self._runs: dict = {}
        self._feedback: dict = {}

    def compiled(self, workload, input_set="ref", scheme="ISPBO",
                 feedback=None):
        key = (workload.name, input_set, scheme)
        if key not in self._compiled:
            options = CompilerOptions(scheme=scheme, feedback=feedback) \
                if feedback is not None or scheme != "ISPBO" \
                else None
            self._compiled[key] = compile_program(
                workload.program(input_set), options)
        return self._compiled[key]

    def run_pair(self, workload, input_set="ref", scheme="ISPBO",
                 feedback=None):
        """(original RunResult, transformed RunResult)."""
        key = (workload.name, input_set, scheme)
        if key not in self._runs:
            res = self.compiled(workload, input_set, scheme, feedback)
            before = run_program(res.program)
            after = run_program(res.transformed)
            assert before.stdout == after.stdout, \
                f"{workload.name}: transformation changed output"
            self._runs[key] = (before, after)
        return self._runs[key]

    def gain_percent(self, workload, input_set="ref", scheme="ISPBO",
                     feedback=None) -> float:
        before, after = self.run_pair(workload, input_set, scheme,
                                      feedback)
        return 100.0 * (before.cycles / after.cycles - 1.0)

    def feedback(self, workload, input_set="train", pmu_period=16):
        key = (workload.name, input_set, pmu_period, "instr")
        if key not in self._feedback:
            self._feedback[key] = collect_feedback(
                workload.program(input_set), pmu_period=pmu_period,
                input_label=input_set)
        return self._feedback[key]

    def feedback_uninstrumented(self, workload, input_set="train",
                                pmu_period=16):
        key = (workload.name, input_set, pmu_period, "plain")
        if key not in self._feedback:
            self._feedback[key] = sample_uninstrumented(
                workload.program(input_set), pmu_period=pmu_period)
        return self._feedback[key]


@pytest.fixture(scope="session")
def session():
    return Session()


@pytest.fixture(scope="session")
def workloads():
    return ALL_WORKLOADS


def once(benchmark, fn):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


__all__ = ["Session", "once", "save_result", "lower_program"]
