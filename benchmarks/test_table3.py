"""Table 3 — transformable/transformed types and performance impact.

For every benchmark (reference inputs): number of record types T, the
transformed types T_t, split-out + dead fields S/D, and the performance
effect of the transformations measured on the simulated machine.  mcf
and moldyn additionally run profile-driven (PBO), mirroring the paper's
with/without-profile rows.

Shape assertions (the paper's headline): moldyn, 181.mcf and 179.art
gain significantly (paper: 21.8–30.9%, 16.7–17.3%, 78.2%), three
benchmarks degrade slightly within the noise band (cactusADM,
calculix, h264avc), and everything else stays small.
"""

from conftest import once, save_result

from repro.workloads import MCF, MOLDYN, get_workload


def build_rows(session, workloads):
    rows = []
    for wl in workloads:
        res = session.compiled(wl, input_set="ref")
        t, tt, sd = res.table3_row()
        gain = session.gain_percent(wl, input_set="ref")
        rows.append((wl.name, "no", t, tt, sd, gain,
                     wl.paper.perf_gain))
    # PBO rows for the paper's with-profile pair
    for wl in (MCF, MOLDYN):
        fb = session.feedback(wl, "train")
        res = session.compiled(wl, input_set="ref", scheme="PBO",
                               feedback=fb)
        t, tt, sd = res.table3_row()
        gain = session.gain_percent(wl, input_set="ref", scheme="PBO",
                                    feedback=fb)
        rows.append((wl.name, "yes", t, tt, sd, gain,
                     wl.paper.perf_gain_pbo))
    return rows


def render(rows):
    lines = [f"{'Benchmark':12s} {'PBO':>4s} {'T':>5s} {'T_t':>5s} "
             f"{'S/D':>5s} {'Perf':>9s} {'Paper':>9s}"]
    for name, pbo, t, tt, sd, gain, paper in rows:
        paper_s = f"{paper:+8.1f}%" if paper is not None else "      ? "
        lines.append(f"{name:12s} {pbo:>4s} {t:5d} {tt:5d} {sd:5d} "
                     f"{gain:+8.2f}% {paper_s}")
    return "\n".join(lines)


def test_table3(benchmark, session, workloads):
    rows = once(benchmark, lambda: build_rows(session, workloads))
    text = render(rows)
    print("\nTable 3 — transformed types and performance impact\n"
          + text)
    save_result("table3.txt", text)

    gains = {(name, pbo): gain
             for name, pbo, _, _, _, gain, _ in rows}

    # the three significant winners, in the paper's order of magnitude
    assert gains[("179.art", "no")] > 40.0
    assert gains[("181.mcf", "no")] > 8.0
    assert gains[("moldyn", "no")] > 8.0
    assert gains[("179.art", "no")] > gains[("181.mcf", "no")]
    assert gains[("179.art", "no")] > gains[("moldyn", "no")]

    # the three minor degradations sit in the noise band
    for name in ("cactusADM", "calculix", "h264avc"):
        assert -4.0 < gains[(name, "no")] < 0.5, name

    # gobmk: nothing transformable, exactly zero effect
    assert gains[("gobmk", "no")] == 0.0

    # the remaining benchmarks stay small but non-negative
    for name in ("milc", "povray", "lucille", "sphinx", "ssearch"):
        assert -1.0 < gains[(name, "no")] < 8.0, name

    # PBO rows remain significant gains for both profile-driven pairs
    assert gains[("181.mcf", "yes")] > 8.0
    assert gains[("moldyn", "yes")] > 8.0


def test_table3_transformed_type_counts(benchmark, session, workloads):
    """T_t stays small everywhere — profitability filters block most
    legal types, the paper's central observation."""
    def counts():
        out = {}
        for wl in workloads:
            res = session.compiled(wl, input_set="ref")
            t, tt, sd = res.table3_row()
            out[wl.name] = (t, tt, sd)
        return out

    by_name = once(benchmark, counts)
    for name, (t, tt, sd) in by_name.items():
        assert tt <= 2, name
        legal = session.compiled(get_workload(name)).legality
        assert tt <= len(legal.legal_types()), name
    assert by_name["gobmk"][1] == 0
    # node: 5 fields split out under T_s plus the dead 'ident'
    assert by_name["181.mcf"] == (5, 1, 6)
