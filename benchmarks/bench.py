#!/usr/bin/env python
"""Pipeline performance benchmark: parallel FE, summary cache, simulator.

Produces ``BENCH_pipeline.json`` at the repository root with three
measurements backing the PR's performance claims:

- ``warm_speedup``  — a warm recompile (unchanged sources + options,
  populated summary cache) of a parse-heavy multi-TU program versus the
  cold compile that filled the cache.  The warm path restores the whole
  front end from one content-addressed entry, so the claim is >= 5x.
- ``parallel_speedup`` — cold compile with ``jobs=4`` versus
  ``jobs=1`` (no cache either way): the pass-DAG scheduler running
  parse/summarize/analysis nodes concurrently.
- ``scheduler`` — the DAG shape behind that number: node count,
  critical-path ms, jobs=1 vs jobs=N wall, measured speedup, and a
  serial-vs-parallel result-parity check.
- ``phases`` — per-phase wall time (fe/ipa/be), the hottest guarded
  passes, and the observability cost: best-of-N compile time with
  tracing disabled versus enabled (the disabled path must stay a
  no-op; ``benchmarks/obs_smoke.py`` gates it at < 5%).
- ``wire`` — the cost of the hardened wire protocol on the
  uncontended path: per-request µs for the bounded line reader plus
  protocol-version check versus a plain unbounded readline, expressed
  against the cheapest real request (a warm cached compile).  The
  ``--check`` gate holds the overhead under 2%.
- ``simulator`` — cycles/second executing 181.mcf (train) on the
  simulated machine, plus the cycle count and an output/stats hash so
  any semantic drift in the simulator fast path is caught, not just
  slowdowns.  The committed baseline throughput was measured at the
  growth seed (commit dd3011c) on the same container class.
- ``search`` — the global layout search: greedy vs seeded-SA vs ILP
  replay cycles per searched type on mcf/art/moldyn, and the batched
  cost-oracle economics (ms per candidate, batched vs one-at-a-time).
  The ``--check`` gates assert SA <= greedy everywhere and a >= 3x
  per-candidate advantage for batched trace replay.

Absolute times vary across machines; CI gates only on the *ordering*
assertions (warm < cold, jobs=4 <= jobs=1), which is what
``--check`` enforces.  Run locally with no arguments to regenerate the
JSON, or ``--units N`` to scale the synthetic program.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import socket
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Compiler, CompilerOptions, effective_cores  # noqa: E402
from repro.obs import MetricsRegistry, Tracer  # noqa: E402
from repro.runtime import run_program  # noqa: E402
from repro.workloads import ALL_WORKLOADS  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent

#: simulator cycles/second at the growth seed (commit dd3011c),
#: measured on the reference container with the same mcf/train run
SEED_SIMULATOR_CYC_PER_SEC = 17.3e6


def make_sources(n_units: int = 10, structs_per_unit: int = 140,
                 funcs_per_unit: int = 5) -> list[tuple[str, str]]:
    """A parse-heavy program: many struct definitions per TU, a few
    functions that allocate and touch them (so legality and deadfields
    have real work), one ``main`` in the first unit."""
    sources = []
    for u in range(n_units):
        lines = []
        for s in range(structs_per_unit):
            fields = "".join(
                f" int f{i}; long g{i}; char c{i};" for i in range(4))
            lines.append(f"struct t{u}_{s} {{{fields} "
                         f"struct t{u}_{s} *next; }};")
        for f in range(funcs_per_unit):
            s = f % structs_per_unit
            lines.append(f"""
int use{u}_{f}(int n) {{
  struct t{u}_{s} *p = (struct t{u}_{s}*)malloc(sizeof(struct t{u}_{s}));
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {{
    p->f0 = i; p->g1 = i + 1; acc = acc + p->f0;
  }}
  free(p);
  return acc;
}}""")
        if u == 0:
            lines.append('int main() { printf("%d\\n", use0_0(3)); '
                         'return 0; }')
        sources.append((f"u{u}.c", "\n".join(lines) + "\n"))
    return sources


def _compile_best(sources, *, jobs: int, cache_dir, repeats: int = 1,
                  transform: bool = False):
    """(best wall seconds, last CompilationResult)."""
    best = []
    result = None
    for _ in range(repeats):
        opts = CompilerOptions(jobs=jobs, cache_dir=cache_dir,
                               transform=transform)
        t0 = time.perf_counter()
        result = Compiler(opts).compile_sources(sources)
        best.append(time.perf_counter() - t0)
        assert not result.diagnostics.has_errors, \
            result.diagnostics.render()
    return min(best), result


def _compile_time(sources, *, jobs: int, cache_dir, repeats: int = 1,
                  transform: bool = False) -> float:
    return _compile_best(sources, jobs=jobs, cache_dir=cache_dir,
                         repeats=repeats, transform=transform)[0]


def _result_fingerprint(result) -> str:
    """Everything parity cares about: decisions, diagnostics, layout."""
    return hashlib.sha256(repr((
        [(d.type_name, d.action, tuple(d.dead_fields),
          tuple(d.cold_fields), d.transformed) for d in result.decisions],
        result.diagnostics.render("warning"),
        sorted(result.legality.types),
    )).encode()).hexdigest()


def bench_pipeline(n_units: int, repeats: int) -> dict:
    sources = make_sources(n_units=n_units)
    cache_root = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cold = _compile_time(sources, jobs=1, cache_dir=cache_root)
        warm = _compile_time(sources, jobs=1, cache_dir=cache_root,
                             repeats=repeats)
        cold_j1, res_j1 = _compile_best(sources, jobs=1,
                                        cache_dir=None,
                                        repeats=repeats)
        cold_j4, res_j4 = _compile_best(sources, jobs=4,
                                        cache_dir=None,
                                        repeats=repeats)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    cores = effective_cores()
    # the scheduler clamps its useful width to min(jobs, cores) — the
    # affinity-aware count, so a cgroup/taskset-restricted box reports
    # the truth instead of silently benching serial.  With one
    # effective core there is no parallelism to measure, so the ratio
    # is reported as null rather than a misleading ~1.0
    jobs_effective = min(4, cores)
    parallel_speedup = round(cold_j1 / cold_j4, 2) \
        if jobs_effective > 1 else None
    sched_j4 = res_j4.scheduler
    pipeline = {
        "units": n_units,
        "cpu_count": os.cpu_count() or 1,
        "effective_cores": cores,
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "warm_speedup": round(cold / warm, 2),
        "cold_jobs1_s": round(cold_j1, 4),
        "cold_jobs4_s": round(cold_j4, 4),
        "jobs_requested": 4,
        "jobs_effective": jobs_effective,
        "parallel_speedup": parallel_speedup,
    }
    scheduler = {
        "nodes": sched_j4.get("nodes"),
        "critical_path_ms": sched_j4.get("critical_path_ms"),
        "mode_jobs4": sched_j4.get("mode"),
        "jobs1_wall_s": round(cold_j1, 4),
        "jobs4_wall_s": round(cold_j4, 4),
        "parallel_speedup": parallel_speedup,
        "parity_ok": _result_fingerprint(res_j1)
        == _result_fingerprint(res_j4),
    }
    return pipeline, scheduler


def bench_phases(n_units: int, repeats: int) -> dict:
    """Per-phase wall time from one traced compile of the synthetic
    program, plus the cost of observability itself: best-of-N wall
    time with tracing disabled (the NULL-tracer fast path) versus
    enabled (tracer + metrics + per-pass profiler)."""
    sources = make_sources(n_units=n_units)

    def timed(tracer=None, metrics=None):
        opts = CompilerOptions(jobs=1, cache_dir=None)
        t0 = time.perf_counter()
        result = Compiler(opts, tracer=tracer,
                          metrics=metrics).compile_sources(sources)
        assert not result.diagnostics.has_errors, \
            result.diagnostics.render()
        return time.perf_counter() - t0, result

    n = max(repeats, 1)
    untraced = min(timed()[0] for _ in range(n))
    traced_walls = []
    result = tracer = metrics = None
    for _ in range(n):
        tracer, metrics = Tracer(), MetricsRegistry()
        wall, result = timed(tracer, metrics)
        traced_walls.append(wall)
    traced = min(traced_walls)

    snap = metrics.snapshot()
    pass_hist = {k: v for k, v in snap.items()
                 if k.startswith("pass.wall_ms")}
    hottest = sorted(result.pass_timings.items(),
                     key=lambda kv: -kv[1])[:5]
    return {
        "units": n_units,
        "untraced_s": round(untraced, 4),
        "traced_s": round(traced, 4),
        "tracing_overhead_pct": round(
            100.0 * (traced / untraced - 1.0), 2),
        "phase_wall_ms": {
            p: round(result.timings[p] * 1e3, 3)
            for p in ("fe", "ipa", "be") if p in result.timings},
        "hottest_passes_ms": {
            name: round(t * 1e3, 3) for name, t in hottest},
        "pass_metric_samples": sum(
            v["count"] for v in pass_hist.values()),
        "span_count": len(tracer.finished()),
        "trace_id": tracer.trace_id,
    }


def bench_simulator(repeats: int) -> dict:
    wl = next(w for w in ALL_WORKLOADS if "mcf" in w.name)
    prog = wl.program("train")
    walls = []
    res = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        res = run_program(prog)
        walls.append(time.perf_counter() - t0)
    wall = statistics.median(walls)
    digest = hashlib.sha256(repr(
        (res.exit_code, res.stdout,
         sorted((k, str(v)) for k, v in res.cache_stats.items()))
    ).encode()).hexdigest()[:16]
    cyc_per_sec = res.cycles / wall
    return {
        "workload": wl.name,
        "cycles": res.cycles,
        "wall_s": round(wall, 4),
        "cyc_per_sec": round(cyc_per_sec),
        "output_stats_hash": digest,
        "seed_cyc_per_sec": SEED_SIMULATOR_CYC_PER_SEC,
        "speedup_vs_seed": round(cyc_per_sec /
                                 SEED_SIMULATOR_CYC_PER_SEC, 2),
    }


def bench_search(repeats: int) -> dict:
    """Global layout search: greedy vs SA vs ILP replay cycles on the
    three focus workloads, plus the batched-oracle economics.

    The ``--check`` gates assert (a) seeded SA is never worse than the
    greedy floor on mcf/art/moldyn — structural, since greedy is in
    the evaluated set — and (b) batched trace replay costs >= 3x less
    per candidate than the one-at-a-time alternative (apply the
    transform, run the full simulator)."""
    from repro.api import SearchOptions
    from repro.runtime.replay import (
        capture_trace, plan_layout, precompile, replay_batch)
    from repro.transform import apply_decisions
    from repro.transform.search import Layout, run_layout_search

    out: dict = {"workloads": {}}
    mcf_ctx = None
    for short in ("mcf", "art", "moldyn"):
        wl = next(w for w in ALL_WORKLOADS if short in w.name)
        res = Compiler(CompilerOptions(transform=False)) \
            .compile_sources(wl.sources("train"))
        trace = capture_trace(res.program)
        entry: dict = {"trace_ops": len(trace),
                       "trace_cycles": trace.cycles, "types": {}}
        for engine in ("greedy", "sa", "ilp"):
            sopts = SearchOptions(engine=engine, budget_s=10.0, seed=7)
            _, stats = run_layout_search(
                res.program, res.decisions, res.legality,
                res.profiles, sopts, trace=trace)
            for tname in sorted(stats):
                if tname.startswith("_"):
                    continue
                s = stats[tname]
                row = entry["types"].setdefault(tname, {})
                row[f"{engine}_cycles"] = s["greedy_cycles"] \
                    if engine == "greedy" else s["best_cycles"]
                if engine != "greedy":
                    row[f"{engine}_evals"] = s["evals"]
                    row[f"{engine}_s"] = s["elapsed_s"]
                if short == "mcf" and mcf_ctx is None:
                    d = next(x for x in res.decisions
                             if x.type_name == tname)
                    mcf_ctx = (res.program, trace, d)
        out["workloads"][wl.name] = entry

    # oracle economics, on mcf's searched type: batched replay cost
    # per candidate vs transforming + fully simulating one candidate
    if mcf_ctx is not None:
        program, trace, decision = mcf_ctx
        compiled = precompile(trace, decision.type_name)
        dead = tuple(decision.dead_fields)
        live = [f.name for f in compiled.fields
                if f.name not in set(dead)]
        # distinct single-group candidates: all rotations of the
        # declaration order (deterministic, no RNG in benchmarks)
        layouts = [Layout((tuple(live[i:] + live[:i]),), False, dead)
                   for i in range(min(len(live), 16))]
        plans = [plan_layout(compiled, l.groups, l.linked, l.dead)
                 for l in layouts]
        batched = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            replay_batch(compiled, plans)
            wall = time.perf_counter() - t0
            batched = wall if batched is None else min(batched, wall)
        per_candidate_s = batched / len(plans)

        one_shot = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            run_program(apply_decisions(program, [decision]))
            wall = time.perf_counter() - t0
            one_shot = wall if one_shot is None else min(one_shot, wall)
        out["oracle"] = {
            "type": decision.type_name,
            "candidates": len(plans),
            "batched_ms_per_candidate": round(per_candidate_s * 1e3,
                                              3),
            "one_at_a_time_ms": round(one_shot * 1e3, 3),
            "batched_speedup": round(one_shot / per_candidate_s, 2),
        }
    return out


def bench_overload(repeats: int, baseline_request_s: float) -> dict:
    """Admission-control overhead on the *uncontended* path: one
    tenant, an empty queue, no quotas — the full
    offer/take/note_completed cycle every daemon request now pays,
    measured per request and expressed against the cheapest real
    request the daemon serves (a warm cached compile).  The CI gate
    holds this under 2%."""
    from repro.service.admission import AdmissionController, QueueItem

    n = 5000
    best = None
    for _ in range(max(repeats, 1)):
        ac = AdmissionController(64)
        t0 = time.perf_counter()
        for _ in range(n):
            item = QueueItem(tenant="bench", op="analyze",
                             enqueued_at=time.monotonic())
            decision = ac.offer(item, budget_s=60.0)
            assert decision.admitted
            taken = ac.take(timeout=0)
            ac.note_completed(taken, service_s=0.001)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    per_request_s = best / n
    return {
        "iterations": n,
        "admission_us_per_request": round(per_request_s * 1e6, 2),
        "baseline_request_ms": round(baseline_request_s * 1e3, 3),
        "uncontended_overhead_pct": round(
            100.0 * per_request_s / baseline_request_s, 4),
    }


def bench_wire(repeats: int, baseline_request_s: float) -> dict:
    """Wire-hardening overhead on the *uncontended* path: every
    request line now flows through the bounded line reader and a
    protocol-version check instead of an unbounded ``makefile``
    readline.  Both paths read the same N framed requests off a
    socketpair fed by a writer thread; the difference, per request,
    is expressed against the cheapest real request the daemon serves
    (a warm cached compile).  The CI gate holds this under 2%."""
    from repro.service.wire import (  # noqa: E402
        DEFAULT_MAX_REQUEST_BYTES, PROTOCOL_VERSION,
        SUPPORTED_PROTOCOL_VERSIONS, BoundedLineReader)

    n = 2000
    line = json.dumps(
        {"id": 1, "op": "analyze", "v": PROTOCOL_VERSION,
         "sources": [["u.c", "int main() { return 0; }"]]}
    ).encode("utf-8") + b"\n"
    payload = line * n

    def feed(sock) -> None:
        try:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def run_once(read_all) -> float:
        a, b = socket.socketpair()
        try:
            writer = threading.Thread(target=feed, args=(a,),
                                      daemon=True)
            writer.start()
            t0 = time.perf_counter()
            read_all(b)
            wall = time.perf_counter() - t0
            writer.join()
        finally:
            a.close()
            b.close()
        return wall

    def bounded(sock) -> None:
        # the hardened server path: bounded framing, JSON decode,
        # version pop + membership check
        reader = BoundedLineReader(sock, DEFAULT_MAX_REQUEST_BYTES)
        count = 0
        while True:
            raw, oversized = reader.readline()
            if raw is None:
                break
            assert not oversized
            req = json.loads(raw.decode("utf-8"))
            v = req.pop("v", 1)
            assert not isinstance(v, bool) \
                and v in SUPPORTED_PROTOCOL_VERSIONS
            count += 1
        assert count == n

    def plain(sock) -> None:
        # the pre-hardening path: unbounded buffered readline + decode
        f = sock.makefile("rb")
        count = 0
        for raw in f:
            json.loads(raw.decode("utf-8"))
            count += 1
        f.close()
        assert count == n

    reps = max(repeats, 1)
    best_bounded = min(run_once(bounded) for _ in range(reps))
    best_plain = min(run_once(plain) for _ in range(reps))
    extra_s = max(0.0, (best_bounded - best_plain) / n)
    return {
        "iterations": n,
        "plain_us_per_request": round(best_plain / n * 1e6, 2),
        "bounded_us_per_request": round(best_bounded / n * 1e6, 2),
        "baseline_request_ms": round(baseline_request_s * 1e3, 3),
        "uncontended_overhead_pct": round(
            100.0 * extra_s / baseline_request_s, 4),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--units", type=int, default=10,
                    help="translation units in the synthetic program")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repetitions (best/median taken)")
    ap.add_argument("--out", default=str(ROOT / "BENCH_pipeline.json"))
    ap.add_argument("--check", action="store_true",
                    help="fail on ordering regressions (CI gate)")
    args = ap.parse_args(argv)

    pipeline, scheduler = bench_pipeline(args.units, args.repeats)
    phases = bench_phases(args.units, args.repeats)
    simulator = bench_simulator(args.repeats)
    search = bench_search(args.repeats)
    overload = bench_overload(args.repeats, pipeline["warm_s"])
    wire = bench_wire(args.repeats, pipeline["warm_s"])
    report = {
        "benchmark": "pipeline",
        "pipeline": pipeline,
        "scheduler": scheduler,
        "phases": phases,
        "simulator": simulator,
        "search": search,
        "overload": overload,
        "wire": wire,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if args.check:
        ok = True
        if pipeline["warm_s"] >= pipeline["cold_s"]:
            print("FAIL: warm recompile not faster than cold",
                  file=sys.stderr)
            ok = False
        # the DAG nodes are CPU-bound; jobs=4 can only win where there
        # are cores to run on (width is clamped to the effective core
        # count, so a 1-core machine must at least break even)
        if pipeline["jobs_effective"] >= 2:
            speedup = scheduler["parallel_speedup"] or 0.0
            if speedup < 1.3:
                print(f"FAIL: parallel_speedup {speedup} < 1.3 with "
                      f"{pipeline['effective_cores']} effective cores",
                      file=sys.stderr)
                ok = False
        else:
            print(f"SKIP parallel_speedup gate: only "
                  f"{pipeline['effective_cores']} effective core(s) — "
                  f"nothing to parallelize onto", file=sys.stderr)
            slack = 1.10
            if pipeline["cold_jobs4_s"] > \
                    pipeline["cold_jobs1_s"] * slack:
                print("FAIL: jobs=4 cold slower than jobs=1 cold",
                      file=sys.stderr)
                ok = False
        if not scheduler["parity_ok"]:
            print("FAIL: jobs=4 results differ from jobs=1 "
                  "(serial/parallel parity broken)", file=sys.stderr)
            ok = False
        if simulator["cycles"] != 15_640_398:
            print(f"FAIL: mcf/train cycle count changed "
                  f"({simulator['cycles']:,} != 15,640,398): the "
                  f"simulator fast path altered semantics",
                  file=sys.stderr)
            ok = False
        for wname, entry in search["workloads"].items():
            for tname, row in entry["types"].items():
                for eng in ("sa", "ilp"):
                    if row[f"{eng}_cycles"] > row["greedy_cycles"]:
                        print(f"FAIL: {wname}/{tname} {eng} search "
                              f"({row[f'{eng}_cycles']:,}) worse than "
                              f"greedy ({row['greedy_cycles']:,})",
                              file=sys.stderr)
                        ok = False
        oracle = search.get("oracle")
        if oracle is None:
            print("FAIL: no searchable type found on mcf",
                  file=sys.stderr)
            ok = False
        elif oracle["batched_speedup"] < 3.0:
            print(f"FAIL: batched oracle replay only "
                  f"{oracle['batched_speedup']}x faster per candidate "
                  f"than one-at-a-time simulation (< 3x)",
                  file=sys.stderr)
            ok = False
        if overload["uncontended_overhead_pct"] >= 2.0:
            print(f"FAIL: admission control costs "
                  f"{overload['uncontended_overhead_pct']}% of an "
                  f"uncontended request (>= 2%)", file=sys.stderr)
            ok = False
        if wire["uncontended_overhead_pct"] >= 2.0:
            print(f"FAIL: bounded reader + version check cost "
                  f"{wire['uncontended_overhead_pct']}% of an "
                  f"uncontended request (>= 2%)", file=sys.stderr)
            ok = False
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
