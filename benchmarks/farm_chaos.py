#!/usr/bin/env python
"""Chaos drill for the resilient compile farm.

Starts a real farm — N ``repro serve`` daemon subprocesses behind a
router, all sharing one cache service — then attacks it mid-batch and
asserts the farm contract: **zero failed requests**.

Drills, in order:

1. **Kill failover**: SIGKILL the shard that is serving a workload
   while a batch of that workload is in flight.  Every request must
   still come back ``ok`` (the router fails the in-flight attempts
   over to the surviving shards) and the router must report at least
   one failover.
2. **Gray failure**: SIGSTOP a serving shard so it accepts
   connections but never answers.  The router's hedge must race a
   duplicate on another shard and win without waiting out the full
   shard timeout.
3. **Hot restart**: drain-restart every shard, one at a time, while a
   mixed batch runs.  Draining daemons refuse new work with
   ``reason: "draining"`` busy responses, which the router treats as
   failover — not failure — so the rolling restart completes with
   zero failed requests.
4. **Cache corruption**: flip bytes in every on-disk cache entry, then
   re-run a warm workload.  The cache service must quarantine the
   corrupt entries and serve misses; the compile recomputes and still
   ends ``ok``.
5. **Overload** (``--only overload``): one tenant floods the farm far
   past its queue capacity while a second, polite tenant submits a
   small batch at high priority with an end-to-end ``deadline_ms``,
   plus a few requests whose budget is hopeless by construction.
   Gates: every request gets exactly one structured reply; every
   polite request is served within its deadline and its p95 latency
   beats the flood's; zero ``ok``/``degraded`` replies land past
   their propagated deadline (hopeless budgets come back
   ``deadline_exceeded``, never served late).
6. **Router down** (``--only router-down``): the farm runs an HA
   router pair (``--routers 2``); the *active* router is SIGKILLed
   while a staggered batch flows through a multi-endpoint client.
   Gates: zero failed requests (a dead active costs at most one
   client retry), and the warm standby promotes itself — rebuilding
   shard state from its own probes — in under 2 seconds.

``--only`` runs a comma-separated subset of drills (``kill``,
``gray``, ``restart``, ``cache``, ``overload``, ``router-down``); the
default is the four classic drills.  Every step runs under its own
wall-clock budget so a wedged farm fails the job quickly.  Exit
status: 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service import Farm, single_request, wait_ready  # noqa: E402

SOURCE_TMPL = """
struct rec { long key; long val; long rare; double dead; };
struct rec *tab;
int main() {
    int i; long s = %(salt)d;
    tab = (struct rec*) malloc(200 * sizeof(struct rec));
    for (i = 0; i < 200; i++) { tab[i].key = i; tab[i].val = %(salt)d;
        tab[i].rare = -i; tab[i].dead = 0.5; }
    for (i = 0; i < 200; i++) s += tab[i].key + tab[i].val;
    printf("s=%%ld\\n", s);
    return 0;
}
"""


def workload(salt: int) -> list:
    return [[f"w{salt}.c", SOURCE_TMPL % {"salt": salt}]]


class StepTimer:
    """Per-step wall-clock guard: exceeding it fails the drill."""

    def __init__(self, name: str, limit_s: float):
        self.name = name
        self.limit_s = limit_s
        self.t0 = time.monotonic()

    def check(self) -> None:
        elapsed = time.monotonic() - self.t0
        if elapsed > self.limit_s:
            raise TimeoutError(
                f"step {self.name!r} exceeded its {self.limit_s:.0f}s "
                f"budget ({elapsed:.1f}s elapsed)")

    def done(self) -> None:
        self.check()
        print(f"  step {self.name!r}: "
              f"{time.monotonic() - self.t0:.1f}s", flush=True)


def fire_batch(router_sock: str, requests: list[dict],
               timeout: float) -> tuple[dict, dict]:
    """Fire requests concurrently; (responses, dropped) by request id."""
    responses: dict = {}
    dropped: dict = {}

    def one(req: dict) -> None:
        try:
            responses[req["id"]] = single_request(
                router_sock, req, timeout=timeout)
        except Exception as exc:
            dropped[req["id"]] = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=one, args=(r,))
               for r in requests]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    return responses, dropped


def gate_batch(name: str, responses: dict, dropped: dict,
               expected: int) -> bool:
    """The farm contract: every request answered, every answer ok."""
    ok = True
    for req_id, msg in sorted(dropped.items()):
        ok = False
        print(f"FAIL [{name}]: request {req_id} dropped: {msg}",
              file=sys.stderr)
    if len(responses) + len(dropped) != expected:
        ok = False
        print(f"FAIL [{name}]: "
              f"{expected - len(responses) - len(dropped)} request(s) "
              f"never completed", file=sys.stderr)
    failed = {i: r.get("status") for i, r in sorted(responses.items())
              if r.get("status") != "ok"}
    for req_id, status in failed.items():
        ok = False
        print(f"FAIL [{name}]: request {req_id} ended "
              f"status={status!r}: "
              f"{responses[req_id].get('error')}", file=sys.stderr)
    routes = [r.get("route", {}) for r in responses.values()]
    shards = sorted({r.get("shard") for r in routes if r.get("shard")})
    print(f"  [{name}] {len(responses)}/{expected} ok, "
          f"served by {shards}, "
          f"failovers={sum(r.get('failovers', 0) for r in routes)}, "
          f"hedged={sum(1 for r in routes if r.get('hedged'))}",
          flush=True)
    return ok


def percentile(values: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(
        q / 100.0 * (len(ordered) - 1)))))
    return ordered[idx]


def run_overload_drill(farm, router: str, args) -> bool:
    """Drill 5: a flooding tenant vs a polite one with deadlines.

    ``floody`` fires 5x the farm's batch size with no deadline;
    ``nice`` concurrently sends a small high-priority batch with a
    real ``deadline_ms`` plus a few requests whose 1 ms budget is
    hopeless by construction.  See the module docstring for gates."""
    ok = True
    step = StepTimer("overload", args.step_timeout * 2)
    nice_deadline_ms = min(30_000.0, args.step_timeout * 1000.0)
    flood = [{"id": f"f{i}", "op": "analyze",
              "sources": [[f"flood{i}.c",
                           SOURCE_TMPL % {"salt": 1000 + i}]],
              "options": {"cache": False}, "tenant": "floody"}
             for i in range(args.requests * 5)]
    nice = [{"id": f"n{i}", "op": "analyze",
             "sources": [[f"nice{i}.c",
                          SOURCE_TMPL % {"salt": 2000 + i}]],
             "options": {"cache": False}, "tenant": "nice",
             "priority": "high", "deadline_ms": nice_deadline_ms}
            for i in range(args.requests)]
    hopeless = [{"id": f"h{i}", "op": "analyze",
                 "sources": [[f"hope{i}.c",
                              SOURCE_TMPL % {"salt": 3000 + i}]],
                 "options": {"cache": False}, "tenant": "nice",
                 "deadline_ms": 1.0}
                for i in range(4)]
    reqs = flood + nice + hopeless
    responses: dict = {}
    elapsed_ms: dict = {}
    dropped: dict = {}

    def one(req: dict) -> None:
        t0 = time.monotonic()
        try:
            responses[req["id"]] = single_request(
                router, req, timeout=args.step_timeout * 2)
            elapsed_ms[req["id"]] = \
                (time.monotonic() - t0) * 1000.0
        except Exception as exc:
            dropped[req["id"]] = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=one, args=(r,))
               for r in reqs]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=args.step_timeout * 2)

    # gate 1: every request got exactly one structured reply
    for req_id, msg in sorted(dropped.items()):
        ok = False
        print(f"FAIL [overload]: request {req_id} dropped: {msg}",
              file=sys.stderr)
    if len(responses) + len(dropped) != len(reqs):
        ok = False
        print(f"FAIL [overload]: "
              f"{len(reqs) - len(responses) - len(dropped)} "
              f"request(s) never completed", file=sys.stderr)
    for req_id, resp in sorted(responses.items()):
        if not isinstance(resp.get("status"), str):
            ok = False
            print(f"FAIL [overload]: request {req_id} reply has no "
                  f"status: {resp}", file=sys.stderr)

    # gate 2: the polite tenant's deadline batch is served in full,
    # inside its deadline
    nice_latencies = []
    for req in nice:
        resp = responses.get(req["id"])
        if resp is None:
            continue              # already failed gate 1
        if resp.get("status") not in ("ok", "degraded"):
            ok = False
            print(f"FAIL [overload]: nice request {req['id']} ended "
                  f"{resp.get('status')!r}: {resp.get('error')}",
                  file=sys.stderr)
            continue
        nice_latencies.append(elapsed_ms[req["id"]])

    # gate 3: zero served replies past their propagated deadline —
    # a reply that would land late must be deadline_exceeded instead
    for req in nice + hopeless:
        resp = responses.get(req["id"])
        if resp is None:
            continue
        late = elapsed_ms[req["id"]] > req["deadline_ms"]
        if resp.get("status") in ("ok", "degraded") and late:
            ok = False
            print(f"FAIL [overload]: request {req['id']} served "
                  f"{elapsed_ms[req['id']]:.0f}ms into a "
                  f"{req['deadline_ms']:.0f}ms deadline",
                  file=sys.stderr)
    hopeless_statuses = {r["id"]: responses.get(r["id"], {})
                         .get("status") for r in hopeless}
    if any(s in ("ok", "degraded")
           for s in hopeless_statuses.values()):
        ok = False
        print(f"FAIL [overload]: hopeless 1ms-budget requests were "
              f"served instead of refused: {hopeless_statuses}",
              file=sys.stderr)

    # gate 4: fairness — the polite tenant's p95 beats the flood's
    # (the flood queues behind itself, nice interleaves via DRR)
    flood_latencies = [elapsed_ms[r["id"]] for r in flood
                       if responses.get(r["id"], {}).get("status")
                       in ("ok", "degraded")
                       and r["id"] in elapsed_ms]
    if nice_latencies and len(flood_latencies) >= args.requests:
        nice_p95 = percentile(nice_latencies, 95)
        flood_p95 = percentile(flood_latencies, 95)
        if nice_p95 > flood_p95:
            ok = False
            print(f"FAIL [overload]: polite tenant p95 "
                  f"{nice_p95:.0f}ms exceeds flooding tenant p95 "
                  f"{flood_p95:.0f}ms — fair queueing is not "
                  f"protecting the polite tenant", file=sys.stderr)
    nice_p95 = percentile(nice_latencies, 95) if nice_latencies \
        else float("nan")
    served_flood = len(flood_latencies)
    stats = single_request(router, {"op": "stats"},
                           timeout=30)["stats"]
    fairness = stats.get("fairness", {})
    print(f"  [overload] flood served {served_flood}/{len(flood)}, "
          f"nice served {len(nice_latencies)}/{len(nice)} "
          f"(p95 {nice_p95:.0f}ms), hopeless "
          f"{sorted(hopeless_statuses.values())}", flush=True)
    print(f"  [overload] router fairness: "
          f"{fairness.get('tenants', {})}", flush=True)
    step.done()
    return ok


TAKEOVER_GATE_S = 2.0


def run_router_down_drill(farm, args) -> bool:
    """Drill 6: SIGKILL the active router while a batch is in flight.

    Clients speak to the HA pair through a multi-endpoint spec
    (``unix:r0,unix:r1``), so a dead active costs at most one client
    retry.  The warm standby must notice the silence on its peer
    probes and promote itself — rebuilding shard state from its own
    probes — within ``TAKEOVER_GATE_S`` seconds."""
    ok = True
    step = StepTimer("router-down", args.step_timeout * 2)
    endpoints = farm.router_endpoints

    # learn which router is active and who stands by
    active_name = None
    standby_socks: list[str] = []
    for i, sock in enumerate(farm.router_sockets):
        try:
            ping = single_request(sock, {"op": "ping"},
                                  timeout=10, reconnects=0)
        except Exception:
            continue
        if ping.get("active") and active_name is None:
            active_name = f"r{i}"
        else:
            standby_socks.append(sock)
    if active_name is None or not standby_socks:
        print(f"FAIL [router-down]: need an active router and a "
              f"warm standby (active={active_name!r}, "
              f"standbys={len(standby_socks)})", file=sys.stderr)
        return False
    print(f"  [router-down] active router {active_name!r}, "
          f"{len(standby_socks)} standby(s), "
          f"client endpoints {endpoints}", flush=True)

    # staggered batch through the multi-endpoint client, so requests
    # are in flight before, during, and after the kill
    reqs = [{"id": f"rd{i}", "op": "analyze",
             "sources": [[f"rd{i}.c",
                          SOURCE_TMPL % {"salt": 4000 + i}]],
             "options": {"cache": False}}
            for i in range(args.requests)]
    responses: dict = {}
    dropped: dict = {}

    def one(req: dict, delay: float) -> None:
        time.sleep(delay)
        try:
            responses[req["id"]] = single_request(
                endpoints, req, timeout=args.step_timeout * 2)
        except Exception as exc:
            dropped[req["id"]] = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=one, args=(r, 0.08 * i))
               for i, r in enumerate(reqs)]
    for t in threads:
        t.start()
    time.sleep(0.2)
    t_kill = time.monotonic()
    farm.kill_proc(active_name, sig=signal.SIGKILL)

    # takeover gate: a standby must declare itself active in < 2s
    takeover_s = None
    while time.monotonic() - t_kill < args.step_timeout:
        for sock in standby_socks:
            try:
                p = single_request(sock, {"op": "ping"},
                                   timeout=5, reconnects=0)
            except Exception:
                continue
            if p.get("active"):
                takeover_s = time.monotonic() - t_kill
                break
        if takeover_s is not None:
            break
        time.sleep(0.02)
    if takeover_s is None:
        ok = False
        print("FAIL [router-down]: no standby ever took over",
              file=sys.stderr)
    elif takeover_s > TAKEOVER_GATE_S:
        ok = False
        print(f"FAIL [router-down]: takeover took {takeover_s:.2f}s "
              f"(gate {TAKEOVER_GATE_S:.0f}s)", file=sys.stderr)
    else:
        print(f"  [router-down] standby took over in "
              f"{takeover_s:.2f}s", flush=True)

    for t in threads:
        t.join(timeout=args.step_timeout * 2)
    ok &= gate_batch("router-down", responses, dropped, len(reqs))

    # the promoted standby's HA stats must record the takeover
    takeovers = 0
    for sock in standby_socks:
        try:
            stats = single_request(sock, {"op": "stats"},
                                   timeout=30, reconnects=0)["stats"]
        except Exception:
            continue
        takeovers += stats.get("ha", {}).get("takeovers", 0)
    if takeovers < 1:
        ok = False
        print("FAIL [router-down]: no standby counted a takeover",
              file=sys.stderr)

    # bring the dead router back (supervision stays off during the
    # measurement so a fast respawn cannot mask a slow takeover)
    farm.restart_proc(active_name, ready_timeout=args.step_timeout)
    step.done()
    return ok


DRILLS = ("kill", "gray", "restart", "cache", "overload",
          "router-down")
CLASSIC = ("kill", "gray", "restart", "cache")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--daemons", type=int, default=3)
    ap.add_argument("--requests", type=int, default=8,
                    help="concurrent requests per drill batch")
    ap.add_argument("--pool-size", type=int, default=1)
    ap.add_argument("--cache-budget", default="64M")
    ap.add_argument("--routers", type=int, default=1,
                    help="router processes (>=2 runs an HA pair; "
                         "forced to 2 when router-down is drilled)")
    ap.add_argument("--step-timeout", type=float, default=120.0,
                    help="wall-clock budget per drill step, seconds")
    ap.add_argument("--only", default=None, metavar="DRILLS",
                    help="comma-separated subset of drills to run: "
                         + ", ".join(DRILLS)
                         + " (default: the four classic drills)")
    args = ap.parse_args(argv)
    if args.only is None:
        drills = set(CLASSIC)
    else:
        drills = {d.strip() for d in args.only.split(",") if d.strip()}
        unknown = drills - set(DRILLS)
        if unknown:
            ap.error(f"unknown drill(s): {', '.join(sorted(unknown))}")
    routers = args.routers
    if "router-down" in drills and routers < 2:
        routers = 2

    run_dir = tempfile.mkdtemp(prefix="repro-chaos-", dir="/tmp")
    print(f"farm chaos: {args.daemons} daemons, {routers} router(s), "
          f"{args.requests} requests per batch, run dir {run_dir}",
          flush=True)
    farm = Farm(run_dir, daemons=args.daemons,
                pool_size=args.pool_size,
                cache_budget=args.cache_budget,
                routers=routers)
    router = farm.router_endpoints
    ok = True
    try:
        step = StepTimer("startup", args.step_timeout)
        farm.start(ready_timeout=args.step_timeout)
        step.done()

        # warm one workload and learn which shard serves it
        step = StepTimer("warmup", args.step_timeout)
        warm = single_request(router, {
            "id": "warm", "op": "analyze", "sources": workload(0)},
            timeout=args.step_timeout)
        if warm.get("status") != "ok":
            print(f"FAIL: warmup not ok: {warm.get('status')}",
                  file=sys.stderr)
            return 1
        victim = warm["route"]["shard"]
        print(f"  workload 0 is served by shard {victim!r}",
              flush=True)
        step.done()

        # -- drill 1: SIGKILL the serving shard mid-batch ----------------
        # The kill lands *between* two half-batches, not on a timer: a
        # warm cache can answer the whole batch before a timer fires,
        # and then no failover would be needed at all.  The second
        # half still rendezvous-routes to the dead shard, so every one
        # of those requests must fail over.
        if "kill" in drills:
            step = StepTimer("kill-failover", args.step_timeout)
            half = max(1, args.requests // 2)
            reqs = [{"id": i, "op": "analyze", "sources": workload(0)}
                    for i in range(args.requests)]
            responses, dropped = fire_batch(router, reqs[:half],
                                            args.step_timeout)
            ok &= gate_batch("kill-failover/before", responses,
                             dropped, half)
            farm.kill_proc(victim, sig=signal.SIGKILL)
            responses, dropped = fire_batch(router, reqs[half:],
                                            args.step_timeout)
            ok &= gate_batch("kill-failover", responses, dropped,
                             len(reqs) - half)
            stats = single_request(router, {"op": "stats"},
                                   timeout=30)["stats"]
            if stats["router"]["failovers"] < 1:
                ok = False
                print("FAIL [kill-failover]: router reports no "
                      "failovers after its serving shard was killed",
                      file=sys.stderr)
            farm.restart_proc(victim, ready_timeout=args.step_timeout)
            step.done()

        # -- drill 2: gray failure (stopped, not dead) -------------------
        if "gray" in drills:
            step = StepTimer("gray-failure", args.step_timeout)
            probe = single_request(router, {
                "id": "gray", "op": "analyze", "sources": workload(1)},
                timeout=args.step_timeout)
            gray = probe["route"]["shard"]
            pid = farm.procs[gray].proc.pid
            os.kill(pid, signal.SIGSTOP)
            try:
                t0 = time.monotonic()
                resp = single_request(router, {
                    "id": "hedge", "op": "analyze",
                    "sources": workload(1)},
                    timeout=args.step_timeout)
                elapsed = time.monotonic() - t0
            finally:
                os.kill(pid, signal.SIGCONT)
            if resp.get("status") != "ok":
                ok = False
                print(f"FAIL [gray-failure]: request against a "
                      f"stopped shard ended {resp.get('status')!r}",
                      file=sys.stderr)
            if not resp.get("route", {}).get("hedged"):
                ok = False
                print("FAIL [gray-failure]: response was not hedged "
                      f"(route={resp.get('route')})", file=sys.stderr)
            print(f"  [gray-failure] hedged around stopped shard "
                  f"{gray!r} in {elapsed:.1f}s "
                  f"(winner {resp.get('route', {}).get('shard')!r})",
                  flush=True)
            step.done()

        # -- drill 3: rolling drain-restart under load -------------------
        if "restart" in drills:
            step = StepTimer("hot-restart", args.step_timeout * 2)
            reqs = [{"id": 100 + i, "op": "analyze",
                     "sources": workload(i % 4)}
                    for i in range(args.requests)]
            batch: dict = {}

            def run_batch() -> None:
                batch["result"] = fire_batch(router, reqs,
                                             args.step_timeout * 2)

            runner = threading.Thread(target=run_batch)
            runner.start()
            time.sleep(0.3)
            farm.rolling_restart(ready_timeout=args.step_timeout)
            runner.join(timeout=args.step_timeout * 2)
            responses, dropped = batch.get("result", ({}, {}))
            ok &= gate_batch("hot-restart", responses, dropped,
                             len(reqs))
            restarts = {n: p.restarts for n, p in farm.procs.items()
                        if p.kind == "shard"}
            if any(r < 1 for r in restarts.values()):
                ok = False
                print(f"FAIL [hot-restart]: not every shard was "
                      f"restarted: {restarts}", file=sys.stderr)
            step.done()

        # -- drill 4: corrupt the shared cache on disk -------------------
        if "cache" in drills:
            step = StepTimer("cache-corruption", args.step_timeout)
            entries = [p for p in Path(farm.cache_dir).rglob("*.pkl")
                       if "quarantine" not in p.parts]
            for p in entries:
                raw = bytearray(p.read_bytes())
                raw[-1] ^= 0xFF
                p.write_bytes(bytes(raw))
            print(f"  corrupted {len(entries)} cache entr(ies) on "
                  f"disk", flush=True)
            resp = single_request(router, {
                "id": "post-corrupt", "op": "analyze",
                "sources": workload(0)}, timeout=args.step_timeout)
            if resp.get("status") != "ok":
                ok = False
                print(f"FAIL [cache-corruption]: compile against a "
                      f"corrupt cache ended {resp.get('status')!r}",
                      file=sys.stderr)
            stats = single_request(router, {"op": "stats"},
                                   timeout=30)["stats"]
            cache_stats = (stats.get("cache") or {}).get("cache", {})
            if entries and not cache_stats.get("corrupt"):
                ok = False
                print(f"FAIL [cache-corruption]: cache service "
                      f"counted no corruption: {cache_stats}",
                      file=sys.stderr)
            print(f"  [cache-corruption] service stats: "
                  f"hits={cache_stats.get('hits')} "
                  f"misses={cache_stats.get('misses')} "
                  f"corrupt={cache_stats.get('corrupt')} "
                  f"evictions={cache_stats.get('evictions')}",
                  flush=True)
            step.done()

        # -- drill 5: overload with a flooding tenant --------------------
        if "overload" in drills:
            ok &= run_overload_drill(farm, router, args)

        # -- drill 6: kill the active router under load ------------------
        if "router-down" in drills:
            ok &= run_router_down_drill(farm, args)

        # -- post-chaos health -------------------------------------------
        # Recovery is eventual, not instant: a shard ejected during
        # the drills is readmitted by the probe loop on its jittered
        # backoff schedule, so poll until the farm is back to full
        # strength (or the step budget says it never got there).
        step = StepTimer("post-health", args.step_timeout)
        deadline = time.monotonic() + args.step_timeout
        while True:
            ping = single_request(router, {"op": "ping"}, timeout=30)
            if ping.get("pong") and ping.get("shards") == args.daemons:
                break
            if time.monotonic() >= deadline:
                ok = False
                print(f"FAIL: farm unhealthy after chaos: {ping}",
                      file=sys.stderr)
                break
            time.sleep(0.2)
        stats = single_request(router, {"op": "stats"},
                               timeout=30)["stats"]
        print(f"  router counters: {stats['router']}", flush=True)
        step.done()

        print("farm chaos: " + ("OK" if ok else "FAILED"), flush=True)
        return 0 if ok else 1
    finally:
        farm.stop()


if __name__ == "__main__":
    raise SystemExit(main())
