"""Table 2 — relative field hotness of mcf's node_t under every
weighting mechanism, and their correlation to the PBO baseline.

Columns: PBO (train profile), PPBO (reference profile), SPBO, ISPBO,
ISPBO.NO, ISPBO.W, DMISS, DLAT, DMISS.NO.  The paper's headline
findings, asserted here:

- PPBO correlates almost perfectly with PBO (r = 0.986 in the paper);
- ISPBO beats SPBO and beats/matches its unscaled variant ISPBO.NO —
  the inter-procedural propagation and the exponent both help;
- ISPBO.W correlates strongly with ISPBO (0.94): the exponent is a
  valid approximation of raised back-edge probabilities;
- DMISS and DLAT are nearly interchangeable (0.96) but are *poor*
  hotness predictors once the dominant field is discounted (r' ≈ 0.21);
- DMISS.NO ≈ DMISS (0.996): instrumentation barely perturbs sampling.
"""

from conftest import once, save_result, lower_program

from repro.profit import (
    compute_profiles, correlation, correlation_prime, match_feedback,
    estimate_spbo, estimate_ispbo, estimate_ispbo_w,
)
from repro.ir import build_call_graph, find_loops
from repro.workloads import MCF

TYPE = "node"
DOMINANT = "potential"


def build_columns(session):
    program = MCF.program("train")
    cfgs = lower_program(program)
    nests = {name: find_loops(cfg) for name, cfg in cfgs.items()}
    cg = build_call_graph(cfgs, program)

    fb_train = session.feedback(MCF, "train", pmu_period=16)
    fb_ref = session.feedback(MCF, "ref", pmu_period=16)
    fb_plain = session.feedback_uninstrumented(MCF, "train",
                                               pmu_period=16)

    def rel(weights):
        profiles = compute_profiles(program, cfgs, weights, nests)
        return profiles[TYPE].relative_hotness()

    def rel_of_samples(values):
        peak = max(values.values(), default=0.0)
        fields = [f.name for f in program.record(TYPE).fields]
        if peak <= 0:
            return {f: 0.0 for f in fields}
        return {f: 100.0 * values.get(f, 0.0) / peak for f in fields}

    columns = {
        "PBO": rel(match_feedback(cfgs, fb_train, scheme="PBO")),
        "PPBO": rel(match_feedback(cfgs, fb_ref, scheme="PPBO")),
        "SPBO": rel(estimate_spbo(cfgs, nests)),
        "ISPBO": rel(estimate_ispbo(cfgs, cg, nests)),
        "ISPBO.NO": rel(estimate_ispbo(cfgs, cg, nests, exponent=1.0)),
        "ISPBO.W": rel(estimate_ispbo_w(cfgs, cg, nests)),
        "DMISS": rel_of_samples(fb_train.dmiss_for(TYPE)),
        "DLAT": rel_of_samples(fb_train.dlat_for(TYPE)),
        "DMISS.NO": rel_of_samples(fb_plain.dmiss_for(TYPE)),
    }
    return program, columns


def render(program, columns, correlations):
    fields = [f.name for f in program.record(TYPE).fields]
    names = list(columns)
    header = f"{'Field':14s}" + "".join(f"{n:>10s}" for n in names)
    lines = [header]
    for f in fields:
        row = f"{f:14s}" + "".join(
            f"{columns[n].get(f, 0.0):10.1f}" for n in names)
        lines.append(row)
    lines.append(f"{'r':14s}" + "".join(
        f"{correlations[n][0]:10.3f}" for n in names))
    lines.append(f"{'r_prime':14s}" + "".join(
        f"{correlations[n][1]:10.3f}" for n in names))
    return "\n".join(lines)


def test_table2(benchmark, session):
    program, columns = once(benchmark, lambda: build_columns(session))
    base = columns["PBO"]
    correlations = {
        name: (correlation(base, col),
               correlation_prime(base, col, dominant=DOMINANT))
        for name, col in columns.items()
    }
    text = render(program, columns, correlations)
    print("\nTable 2 — relative field hotness of node_t\n" + text)
    save_result("table2.txt", text)

    r = {n: correlations[n][0] for n in columns}
    r_prime = {n: correlations[n][1] for n in columns}

    # the baseline correlates perfectly with itself
    assert r["PBO"] > 0.999

    # PPBO ~ perfect (paper 0.986)
    assert r["PPBO"] > 0.95

    # potential is the hottest field in the measured baseline,
    # ident unused
    assert base[DOMINANT] == 100.0
    assert base["ident"] == 0.0

    # inter-procedural scaling beats purely local estimation
    assert r["ISPBO"] > r["SPBO"]

    # the exponent E improves or preserves the correlation vs ISPBO.NO
    assert r["ISPBO"] >= r["ISPBO.NO"] - 0.02

    # ISPBO.W validates the exponent (paper: 0.94 between the two)
    r_w_vs_ispbo = correlation(columns["ISPBO"], columns["ISPBO.W"])
    assert r_w_vs_ispbo > 0.9

    # d-cache misses and latencies are nearly interchangeable (0.96)
    assert correlation(columns["DMISS"], columns["DLAT"]) > 0.9

    # instrumentation barely perturbs sampling (paper: 0.996)
    assert correlation(columns["DMISS"], columns["DMISS.NO"]) > 0.95

    # d-cache events are weaker hotness predictors than real profiles
    # (the paper's stronger version — r' collapsing to 0.21 — reflects
    # mcf's miss profile being dominated by `potential`'s pointer
    # chasing; our uniform PMU sampling tracks hotness more closely,
    # recorded as a deviation in EXPERIMENTS.md)
    assert r["DMISS"] < r["PPBO"]
    assert r_prime["DMISS"] < r_prime["PPBO"]


def test_table2_static_histogram_flatness(benchmark, session):
    """§2.3: static estimation yields flatter histograms than measured
    profiles; the exponent E=1.5 sharpens separability."""
    def build():
        _, columns = build_columns(session)
        return columns

    columns = once(benchmark, build)

    def spread(col):
        values = sorted(col.values())
        mid = [v for v in values if 0.0 < v < 100.0]
        return sum(mid) / len(mid) if mid else 0.0

    # SPBO's mid-range is fatter (flatter histogram) than PBO's
    assert spread(columns["SPBO"]) > spread(columns["PBO"])
    # the exponent pushes mids down relative to ISPBO.NO
    assert spread(columns["ISPBO"]) < spread(columns["ISPBO.NO"])
