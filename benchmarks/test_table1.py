"""Table 1 — transformable types, with and without CSTF/CSTT/ATKN.

Regenerates the paper's per-benchmark legality statistics: total record
types, types passing the practical tests ("Legal"), and types passing
once the three relaxable tests are tolerated ("Relax").  The paper's
averages are 20.9% and 65.7%; the reproduction matches every row
exactly by construction of the workloads, so this bench asserts the
full table.
"""

from conftest import once, save_result


def build_table(session, workloads):
    rows = []
    for wl in workloads:
        res = session.compiled(wl, input_set="ref")
        t, legal, relax = res.table1_row()
        rows.append((wl.name, t, legal, 100.0 * legal / t,
                     relax, 100.0 * relax / t))
    return rows


def render(rows):
    lines = [f"{'Benchmark':12s} {'Types':>6s} {'Legal':>6s} {'%':>6s} "
             f"{'Relax':>6s} {'%':>6s}"]
    for name, t, legal, lp, relax, rp in rows:
        lines.append(f"{name:12s} {t:6d} {legal:6d} {lp:6.1f} "
                     f"{relax:6d} {rp:6.1f}")
    avg_l = sum(r[3] for r in rows) / len(rows)
    avg_r = sum(r[5] for r in rows) / len(rows)
    lines.append(f"{'Average:':12s} {'':6s} {'':6s} {avg_l:6.1f} "
                 f"{'':6s} {avg_r:6.1f}")
    return "\n".join(lines)


PAPER_ROWS = {
    "181.mcf": (5, 1, 3), "179.art": (3, 2, 2), "milc": (20, 5, 12),
    "cactusADM": (116, 13, 68), "gobmk": (59, 9, 45),
    "povray": (275, 14, 207), "calculix": (41, 3, 3),
    "h264avc": (42, 3, 25), "moldyn": (4, 1, 4),
    "lucille": (97, 17, 86), "sphinx": (64, 4, 52),
    "ssearch": (10, 4, 5),
}


def test_table1(benchmark, session, workloads):
    rows = once(benchmark, lambda: build_table(session, workloads))
    text = render(rows)
    print("\nTable 1 — types and transformable types\n" + text)
    save_result("table1.txt", text)

    for name, t, legal, _, relax, _ in rows:
        assert (t, legal, relax) == PAPER_ROWS[name], name

    avg_legal = sum(r[3] for r in rows) / len(rows)
    avg_relax = sum(r[5] for r in rows) / len(rows)
    # paper: 20.9% / 65.7%
    assert abs(avg_legal - 20.9) < 2.0
    assert abs(avg_relax - 65.7) < 2.0


def test_table1_relaxation_monotone(benchmark, session, workloads):
    """Relaxation can only add transformable types, never remove."""
    def check():
        out = []
        for wl in workloads:
            res = session.compiled(wl, input_set="ref")
            t, legal, relax = res.table1_row()
            out.append((legal, relax, t))
        return out

    rows = once(benchmark, check)
    for legal, relax, t in rows:
        assert legal <= relax <= t
