"""§3.4 case studies — what the advisory tool found in SPEC2006.

Two experiences the paper reports:

1. A hot C++ structure larger than an L2 cache line with four hot
   fields scattered through the definition; grouping them (guided by
   the affinity graph, identical under PBO and ISPBO) gave +2.5%.
2. A benchmark dominated by three loops over a two-field record
   (float + 8-byte int); peeling gave almost +40% (and more with
   further tuning).

Both are reproduced end-to-end: the advisor identifies the opportunity
and applying its suggestion yields a gain of the right shape.
"""

from conftest import once, save_result

from repro.core import CompilerOptions, compile_program
from repro.frontend import Program
from repro.runtime import run_program
from repro.advisor import affinity_clusters
from repro.transform import (
    PeelSpec, peel_structure, reorder_fields, affinity_packed_order,
)

# case 1: > 128-byte struct, 4 hot fields scattered among 14 cold ones
_SCATTER_FIELDS = []
_hot_positions = {1, 5, 9, 13}
for k in range(18):
    name = f"h{k}" if k in _hot_positions else f"c{k}"
    _SCATTER_FIELDS.append(f"    long {name};")

CASE1 = """
struct big {
%s
};
struct big *B;
long scalar_phase(long seed) {
    long t; long acc = 0;
    for (t = 0; t < 220000; t++) {
        seed = (seed * 1103515245 + 12345) %% 2147483648;
        acc += seed & 63;
    }
    return acc %% 1000;
}
int main() {
    int i; int it; long s = 0;
    B = (struct big*) malloc(1500 * sizeof(struct big));
    for (i = 0; i < 1500; i++) {
        B[i].h1 = i; B[i].h5 = 2 * i; B[i].h9 = 3 * i; B[i].h13 = i;
        B[i].c0 = i;
    }
    for (it = 0; it < 14; it++)
        for (i = 0; i < 1500; i++) {
            long at = (i * 601) %% 1500;
            s += B[at].h1 + B[at].h5 + B[at].h9 + B[at].h13;
        }
    s += scalar_phase(7);
    printf("%%ld", s);
    return 0;
}
""" % "\n".join(_SCATTER_FIELDS)

# case 2: two-field record dominating three loops
CASE2 = """
struct pairrec { double val; long idx; };
struct pairrec *D;
int main() {
    int i; int it; double s = 0.0; long k = 0;
    D = (struct pairrec*) malloc(11000 * sizeof(struct pairrec));
    for (i = 0; i < 11000; i++) { D[i].val = i * 0.25; D[i].idx = i; }
    for (it = 0; it < 6; it++) {
        for (i = 0; i < 11000; i++) k += D[i].idx & 7;
        for (i = 0; i < 11000; i++) k += D[i].idx >> 3;
        for (i = 0; i < 11000; i++) s += D[i].val;
    }
    printf("%.1f %ld", s, k);
    return 0;
}
"""


def run_case1():
    program = Program.from_source(CASE1)
    res = compile_program(program, CompilerOptions(transform=False))
    prof = res.profiles["big"]
    # the advisor's affinity clustering identifies the 4 hot fields
    clusters = affinity_clusters(prof, 0.3)
    hot_cluster = max(clusters, key=len)
    order = affinity_packed_order(
        prof.record, prof.hotness_by_field(), prof.affinity)
    regrouped = reorder_fields(program, program.record("big"), order)
    before = run_program(program)
    after = run_program(regrouped)
    assert before.stdout == after.stdout
    gain = 100.0 * (before.cycles / after.cycles - 1.0)
    return prof, hot_cluster, order, gain


def run_case2():
    program = Program.from_source(CASE2)
    res = compile_program(program)   # the framework peels by itself
    d = res.decision_for("pairrec")
    before = run_program(res.program)
    after = run_program(res.transformed)
    assert before.stdout == after.stdout
    gain = 100.0 * (before.cycles / after.cycles - 1.0)
    return d, gain


def test_case_study_hot_field_grouping(benchmark):
    prof, hot_cluster, order, gain = once(benchmark, run_case1)
    text = (f"hot cluster found: {hot_cluster}\n"
            f"suggested order:  {order[:6]}...\n"
            f"regrouping gain:  {gain:+.2f}%  (paper: +2.5%)")
    print("\n§3.4 case study 1 — grouping hot fields\n" + text)
    save_result("case_study1.txt", text)

    # the struct is bigger than the last-level line, as in the paper
    assert prof.record.size > 128
    # the affinity graph identifies exactly the four hot fields
    assert set(hot_cluster) == {"h1", "h5", "h9", "h13"}
    # the packed order puts all four in the first cache line
    positions = {f: i for i, f in enumerate(order)}
    assert max(positions[f] for f in ("h1", "h5", "h9", "h13")) <= 3
    # grouping them pays off, same direction and magnitude band
    assert 0.5 < gain < 10.0


def test_case_study_two_field_peel(benchmark):
    d, gain = once(benchmark, run_case2)
    text = (f"decision: {d.action} into {d.groups}\n"
            f"gain: {gain:+.2f}%  (paper: ~+40%)")
    print("\n§3.4 case study 2 — peeling a two-field record\n" + text)
    save_result("case_study2.txt", text)

    assert d.action == "peel"
    assert len(d.groups) == 2
    # a large gain, in the tens of percent
    assert gain > 15.0
