"""§2.5 compile-time overhead.

The paper reports the framework's cost on a commercial compiler: FE
overhead 2.5% on average (max 5%), IPA below 4%, BE 1% (max 2.5%).
Here the equivalent measurement: the wall-clock of each layout-analysis
phase relative to a baseline "compile" (parse + sema + lowering) over
all twelve workloads.  Absolute ratios differ from a production C
compiler, so the assertions bound the phases rather than match
percentages: every phase completes in interactive time and the
analysis phases stay within a small multiple of the baseline.
"""

import time

from conftest import once, save_result, lower_program

from repro.core import Compiler
from repro.frontend import Program


def measure(workloads):
    rows = []
    for wl in workloads:
        sources = wl.sources("ref")
        t0 = time.perf_counter()
        program = Program.from_sources(sources)
        lower_program(program)
        baseline = time.perf_counter() - t0

        program = Program.from_sources(sources)
        res = Compiler().compile(program)
        rows.append((wl.name, baseline, res.timings["fe"],
                     res.timings["ipa"], res.timings["be"]))
    return rows


def test_compile_time_overhead(benchmark, session, workloads):
    rows = once(benchmark, lambda: measure(workloads))
    lines = [f"{'Benchmark':12s} {'base(ms)':>9s} {'FE(ms)':>8s} "
             f"{'IPA(ms)':>8s} {'BE(ms)':>8s}"]
    total_base = total_fe = total_ipa = total_be = 0.0
    for name, base, fe, ipa, be in rows:
        lines.append(f"{name:12s} {base * 1e3:9.1f} {fe * 1e3:8.1f} "
                     f"{ipa * 1e3:8.1f} {be * 1e3:8.1f}")
        total_base += base
        total_fe += fe
        total_ipa += ipa
        total_be += be
    lines.append(
        f"{'Total':12s} {total_base * 1e3:9.1f} {total_fe * 1e3:8.1f} "
        f"{total_ipa * 1e3:8.1f} {total_be * 1e3:8.1f}")
    text = "\n".join(lines)
    print("\n§2.5 — compile-time per phase\n" + text)
    save_result("compile_time.txt", text)

    # every phase is interactive even on the largest workload
    for name, base, fe, ipa, be in rows:
        assert fe < 5.0 and ipa < 5.0 and be < 10.0, name

    # the FE analysis re-walks what the baseline built: same order of
    # magnitude, not an explosion
    assert total_fe < 5.0 * max(total_base, 1e-3)
    # IPA (summary aggregation + heuristics) stays bounded too
    assert total_ipa < 5.0 * max(total_base, 1e-3)
