#!/usr/bin/env python
"""CI smoke drill for the supervised compile service.

Starts a real ``repro serve`` daemon subprocess, then fires concurrent
client requests at it — a fraction of them carrying injected
worker-kill faults (SIGKILL mid-``apply``) — and asserts the service
contract:

1. **No request is dropped**: every request receives exactly one
   structured response (``ok`` / ``degraded`` / ``busy`` / ``error``).
2. Requests poisoned with a one-shot kill still end ``ok`` — the
   supervisor retried them on a fresh, cache-warm worker.
3. The daemon survives the whole drill (it still answers ``ping`` and
   ``stats`` afterwards) and its crash directory holds a report for
   every kill.

Every phase runs under its own wall-clock timeout so a wedged daemon
fails the job quickly instead of hitting the CI job timeout.

Exit status: 0 on success, 1 on any contract violation.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service import single_request, wait_ready  # noqa: E402

SOURCE = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""


class StepTimer:
    """Per-step wall-clock guard: exceeding it fails the drill."""

    def __init__(self, name: str, limit_s: float):
        self.name = name
        self.limit_s = limit_s
        self.t0 = time.monotonic()

    def check(self) -> None:
        elapsed = time.monotonic() - self.t0
        if elapsed > self.limit_s:
            raise TimeoutError(
                f"step {self.name!r} exceeded its {self.limit_s:.0f}s "
                f"budget ({elapsed:.1f}s elapsed)")

    def done(self) -> None:
        self.check()
        print(f"  step {self.name!r}: "
              f"{time.monotonic() - self.t0:.1f}s", flush=True)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=12,
                    help="total concurrent requests")
    ap.add_argument("--kills", type=int, default=4,
                    help="requests carrying a one-shot worker kill")
    ap.add_argument("--pool-size", type=int, default=2)
    ap.add_argument("--step-timeout", type=float, default=120.0,
                    help="wall-clock budget per drill step, seconds")
    args = ap.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    sock = os.path.join(tmp, "repro.sock")
    cache_dir = os.path.join(tmp, "cache")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")

    print(f"service smoke: {args.requests} concurrent requests, "
          f"{args.kills} with injected worker kills", flush=True)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--pool-size", str(args.pool_size),
         "--deadline", "90", "--max-retries", "2",
         "--queue-max", str(args.requests),   # drill sheds nothing
         "--cache-dir", cache_dir],
        env=env)
    try:
        step = StepTimer("startup", args.step_timeout)
        if not wait_ready(sock, timeout=args.step_timeout):
            print("FAIL: daemon never became ready", file=sys.stderr)
            return 1
        step.done()

        # warm the summary cache once so the drill measures recovery,
        # not twelve identical cold parses racing each other
        step = StepTimer("warmup", args.step_timeout)
        warm = single_request(sock, {
            "id": "warm", "op": "analyze",
            "sources": [["demo.c", SOURCE]]}, timeout=args.step_timeout)
        if warm.get("status") != "ok":
            print(f"FAIL: warmup request not ok: {warm.get('status')}",
                  file=sys.stderr)
            return 1
        step.done()

        step = StepTimer("concurrent-drill", args.step_timeout)
        responses: dict[int, dict] = {}
        errors: dict[int, str] = {}

        def fire(i: int) -> None:
            req = {"id": i, "op": "transform",
                   "sources": [["demo.c", SOURCE]]}
            if i < args.kills:
                req["faults"] = [{"stage": "apply", "mode": "kill",
                                  "times": 1}]
            try:
                responses[i] = single_request(
                    sock, req, timeout=args.step_timeout)
            except Exception as exc:           # a DROPPED request
                errors[i] = f"{type(exc).__name__}: {exc}"

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(args.requests)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=args.step_timeout)
            step.check()
        step.done()

        ok = True
        # 1. no request dropped: one structured response each
        if errors:
            ok = False
            for i, msg in sorted(errors.items()):
                print(f"FAIL: request {i} dropped: {msg}",
                      file=sys.stderr)
        if len(responses) + len(errors) != args.requests:
            ok = False
            print(f"FAIL: {args.requests - len(responses) - len(errors)}"
                  f" request(s) never completed", file=sys.stderr)
        statuses = {}
        for i, resp in sorted(responses.items()):
            status = resp.get("status")
            statuses[status] = statuses.get(status, 0) + 1
            if status not in ("ok", "degraded", "busy", "error"):
                ok = False
                print(f"FAIL: request {i} got unstructured response: "
                      f"{resp}", file=sys.stderr)
        print(f"  statuses: {statuses}", flush=True)

        # 2. killed requests recovered to a full result
        for i in range(min(args.kills, args.requests)):
            resp = responses.get(i)
            if resp is None:
                continue                       # already reported
            if resp.get("status") != "ok" or resp.get("tier") != "full":
                ok = False
                print(f"FAIL: killed request {i} not recovered: "
                      f"status={resp.get('status')} "
                      f"tier={resp.get('tier')}", file=sys.stderr)
            elif resp.get("respawns", 0) < 1 and \
                    resp.get("attempts", 0) < 2:
                ok = False
                print(f"FAIL: killed request {i} shows no retry "
                      f"({resp.get('attempts')} attempts)",
                      file=sys.stderr)

        # 3. the daemon survived and reports the carnage
        step = StepTimer("post-drill-health", args.step_timeout)
        ping = single_request(sock, {"op": "ping"}, timeout=30)
        if not ping.get("pong"):
            ok = False
            print("FAIL: daemon does not answer ping after the drill",
                  file=sys.stderr)
        stats = single_request(sock, {"op": "stats"},
                               timeout=30).get("stats", {})
        sup = stats.get("supervisor", {})
        print(f"  supervisor stats: requests={sup.get('requests')} "
              f"ok={sup.get('served_ok')} crashes={sup.get('crashes')} "
              f"respawns={sup.get('respawns')}", flush=True)
        crash_dir = sup.get("crash_dir", "")
        reports = list(Path(crash_dir).glob("crash-*.json")) \
            if crash_dir else []
        kills_served = sum(
            1 for i in range(args.kills) if i in responses)
        if len(reports) < kills_served:
            ok = False
            print(f"FAIL: {kills_served} kills but only "
                  f"{len(reports)} crash reports", file=sys.stderr)
        elif reports:
            sample = json.loads(reports[0].read_text())
            print(f"  crash report sample: reason={sample['reason']} "
                  f"last_pass={sample['last_pass']}", flush=True)
        step.done()

        print("service smoke: " + ("OK" if ok else "FAILED"),
              flush=True)
        return 0 if ok else 1
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()


if __name__ == "__main__":
    raise SystemExit(main())
