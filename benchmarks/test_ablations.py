"""Design-choice ablations DESIGN.md calls out.

- T_s sweep: the splitting threshold trades cold coverage against the
  risk of splitting out warm fields (§2.4: "subject to continuous
  tweaking");
- exponent E sweep: E=1.5 against no scaling and over-scaling (§2.3);
- peel-grouping policy: the line-traffic cost model ('auto') against
  the fixed policies, on the two workloads that want opposite answers
  (179.art: per-field; moldyn: affinity groups);
- cache-size sensitivity: the same transformation measured on the
  full-size Itanium 2 hierarchy (working sets fit, effects shrink);
- stride-prefetcher interaction (§2.4: updating stride hints had "no or
  only slightly negative effects").
"""

from conftest import once, save_result, lower_program

from repro.core import CompilerOptions, compile_program
from repro.ir import build_call_graph, find_loops
from repro.profit import (
    compute_profiles, correlation, estimate_ispbo, match_feedback,
)
from repro.runtime import run_program, ITANIUM2_FULL
from repro.runtime.cache import CacheConfig
from repro.transform import HeuristicParams
from repro.workloads import ART, MCF, MOLDYN


def gain_of(result, cache_config=None):
    kw = {"cache_config": cache_config} if cache_config else {}
    before = run_program(result.program, **kw)
    after = run_program(result.transformed, **kw)
    assert before.stdout == after.stdout
    return 100.0 * (before.cycles / after.cycles - 1.0)


# ---------------------------------------------------------------------------
# T_s sweep
# ---------------------------------------------------------------------------

def sweep_ts(session):
    out = {}
    for ts in (2.0, 7.5, 30.0, 70.0):
        params = HeuristicParams(ts_static=ts)
        res = compile_program(MCF.program("ref"),
                              CompilerOptions(params=params))
        d = res.decision_for("node")
        out[ts] = (len(d.cold_fields), gain_of(res))
    return out


def test_ts_sweep(benchmark, session):
    results = once(benchmark, lambda: sweep_ts(session))
    lines = [f"T_s={ts:5.1f}%  split-out={n:2d}  gain={g:+7.2f}%"
             for ts, (n, g) in results.items()]
    text = "\n".join(lines)
    print("\nAblation — splitting threshold T_s on mcf\n" + text)
    save_result("ablation_ts.txt", text)

    # more aggressive thresholds split more fields out
    counts = [n for n, _ in results.values()]
    assert counts == sorted(counts)
    # the paper's operating point stays profitable
    assert results[7.5][1] > 5.0
    # crossing into the hot core (pred/mark at T_s = 70%) gives the
    # win back — hot fields must remain in the hot section (§2.4)
    assert results[70.0][1] < results[30.0][1]
    assert results[70.0][1] < results[7.5][1]


# ---------------------------------------------------------------------------
# exponent E sweep
# ---------------------------------------------------------------------------

def sweep_exponent(session):
    program = MCF.program("train")
    cfgs = lower_program(program)
    nests = {name: find_loops(cfg) for name, cfg in cfgs.items()}
    cg = build_call_graph(cfgs, program)
    fb = session.feedback(MCF, "train")
    pbo = compute_profiles(program, cfgs,
                           match_feedback(cfgs, fb), nests)
    base = pbo["node"].relative_hotness()
    out = {}
    for e in (1.0, 1.5, 2.5):
        weights = estimate_ispbo(cfgs, cg, nests, exponent=e)
        rel = compute_profiles(program, cfgs, weights,
                               nests)["node"].relative_hotness()
        out[e] = correlation(base, rel)
    return out


def test_exponent_sweep(benchmark, session):
    results = once(benchmark, lambda: sweep_exponent(session))
    lines = [f"E={e:3.1f}  r(PBO)={r:+.3f}" for e, r in results.items()]
    text = "\n".join(lines)
    print("\nAblation — ISPBO separability exponent\n" + text)
    save_result("ablation_exponent.txt", text)

    # the paper's E=1.5 beats (or at least matches) no scaling
    assert results[1.5] >= results[1.0] - 0.02
    # all choices remain strongly correlated — E is a refinement
    assert all(r > 0.6 for r in results.values())


# ---------------------------------------------------------------------------
# peel-grouping policy
# ---------------------------------------------------------------------------

def _moldyn_large():
    """A moldyn instance whose particle array is far beyond the L3:
    this is the regime where per-field peeling loses to affinity
    grouping (at Table 3's size everything is near the L3 boundary and
    the policies converge)."""
    from repro.workloads.moldyn import _TEMPLATE
    from repro.workloads.base import render
    from repro.frontend import Program
    src = render(_TEMPLATE, {"n_atoms": 4000, "n_pairs": 3000,
                             "steps": 8})
    return Program.from_source(src)


def sweep_peel_modes(session):
    out = {}
    for mode in ("auto", "per-field", "hot-cold", "affinity"):
        res = compile_program(
            ART.program("ref"),
            CompilerOptions(params=HeuristicParams(peel_mode=mode)))
        out[("179.art", mode)] = gain_of(res)
        res = compile_program(
            _moldyn_large(),
            CompilerOptions(params=HeuristicParams(peel_mode=mode)))
        out[("moldyn-large", mode)] = gain_of(res)
    return out


def test_peel_mode_ablation(benchmark, session):
    results = once(benchmark, lambda: sweep_peel_modes(session))
    lines = [f"{name:14s} {mode:10s} {g:+8.2f}%"
             for (name, mode), g in results.items()]
    text = "\n".join(lines)
    print("\nAblation — peel grouping policy\n" + text)
    save_result("ablation_peelmode.txt", text)

    # art wants per-field; moldyn (at scale) wants affinity groups
    assert results[("179.art", "per-field")] > \
        results[("179.art", "hot-cold")]
    assert results[("moldyn-large", "affinity")] > \
        results[("moldyn-large", "per-field")]
    # per-field peeling actively hurts moldyn's random force loop
    assert results[("moldyn-large", "per-field")] < 2.0
    # the cost model tracks the best fixed policy per workload
    assert results[("179.art", "auto")] >= \
        results[("179.art", "per-field")] - 2.0
    assert results[("moldyn-large", "auto")] >= \
        results[("moldyn-large", "affinity")] - 2.0


# ---------------------------------------------------------------------------
# cache-size sensitivity
# ---------------------------------------------------------------------------

def sweep_cache(session):
    res = session.compiled(MCF, input_set="ref")
    scaled = gain_of(res)
    full = gain_of(res, cache_config=ITANIUM2_FULL)
    return scaled, full


def test_cache_scaling(benchmark, session):
    scaled, full = once(benchmark, lambda: sweep_cache(session))
    text = (f"scaled hierarchy: {scaled:+7.2f}%\n"
            f"full Itanium 2:   {full:+7.2f}%")
    print("\nAblation — cache-size sensitivity (mcf)\n" + text)
    save_result("ablation_cache.txt", text)

    # on the full-size hierarchy the interpreter-scale working set
    # fits in cache: the layout effect shrinks toward zero
    assert abs(full) < scaled
    assert scaled > 5.0


# ---------------------------------------------------------------------------
# stride prefetcher (§2.4)
# ---------------------------------------------------------------------------

def sweep_prefetch(session):
    from repro.runtime import ITANIUM2_SCALED
    res = session.compiled(MCF, input_set="ref")
    base = gain_of(res)
    pf_config = CacheConfig(levels=ITANIUM2_SCALED.levels,
                            memory_latency=200, prefetch=True)
    pf = gain_of(res, cache_config=pf_config)
    return base, pf


def test_prefetch_interaction(benchmark, session):
    base, pf = once(benchmark, lambda: sweep_prefetch(session))
    text = (f"no prefetch:     {base:+7.2f}%\n"
            f"stride prefetch: {pf:+7.2f}%")
    print("\nAblation — stride prefetcher interaction (mcf)\n" + text)
    save_result("ablation_prefetch.txt", text)

    # §2.4: interaction with prefetching had "no or only slightly
    # negative effects" — the transformation keeps winning either way
    assert pf > 0.0
    assert abs(pf - base) < max(10.0, 0.8 * base)
