"""§2.4 ablation — "hot fields need to remain in the hot section".

The paper's strongest heuristics lesson: for 181.mcf's node_t, forcing
the moderately hot field ``time`` out of the hot section degraded
performance by 9%, and forcing out ``time`` and ``mark`` degraded it by
35%.  Hotness, not affinity, is the single most important splitting
criterion.

This bench reproduces the experiment: the heuristic split is compared
against forced splits that additionally move ``time`` (then ``time``
and ``mark``) to the cold section.  The shape assertion is monotone
degradation as hot fields are forced cold.
"""

from conftest import once, save_result

from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import SplitSpec, split_structure
from repro.workloads import MCF


def measure(force_cold):
    program = MCF.program("ref")
    base_cold = ["number", "sibling_prev", "firstout", "firstin"]
    spec = SplitSpec(record=program.record("node"),
                     cold_fields=base_cold + list(force_cold),
                     dead_fields=["ident"])
    transformed = split_structure(program, spec)
    before = run_program(program)
    after = run_program(transformed)
    assert before.stdout == after.stdout
    return 100.0 * (before.cycles / after.cycles - 1.0)


def build():
    return {
        "heuristic split": measure([]),
        "+ time forced cold": measure(["time"]),
        "+ time, mark forced cold": measure(["time", "mark"]),
    }


def test_forcing_hot_fields_cold_degrades(benchmark):
    gains = once(benchmark, build)
    lines = [f"{name:28s} {gain:+8.2f}%"
             for name, gain in gains.items()]
    text = "\n".join(lines)
    print("\n§2.4 ablation — splitting out mcf's time/mark\n" + text)
    save_result("ablation_split.txt", text)

    good = gains["heuristic split"]
    with_time = gains["+ time forced cold"]
    with_both = gains["+ time, mark forced cold"]

    # monotone degradation as hot fields are forced out
    assert with_time < good
    assert with_both < with_time

    # and the time+mark split gives up a substantial share of the win
    # (the paper saw an absolute 35% degradation)
    assert with_both < good - 5.0
