#!/usr/bin/env python
"""CI smoke drill for the observability layer.

Two gates, mirroring the two promises the obs subsystem makes:

1. **Tracing is free when off.** Compile a parse-heavy synthetic
   program best-of-N with no tracer (the NULL-tracer fast path) and
   again under a tracer + metrics registry + per-pass profiler; fail
   if the *disabled* path is more than ``--overhead-pct`` (default 5%)
   slower than  itself across runs would suggest — i.e. the enabled/
   disabled ratio must stay under the bound.
2. **Distributed traces are real Chrome traces.** Start a live
   ``repro serve`` daemon, send a *traced* ``compare`` request for two
   different workloads, and assert for each: the request is served
   ``ok``, the reply carries a stitched span tree under one trace id,
   the span tree contains the request -> attempt -> job -> compile
   spine, the same trace is retrievable afterwards through the
   ``trace`` control op, and the Chrome ``trace_event`` export passes
   :func:`repro.obs.validate_chrome_trace` with zero problems.

Exit status: 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import CompileOptions, CompileReply, CompileRequest  # noqa: E402
from repro.core import Compiler, CompilerOptions  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry, Tracer, chrome_trace, validate_chrome_trace,
)
from repro.service import single_request, wait_ready  # noqa: E402

from bench import make_sources  # noqa: E402  (sibling module)

WORKLOADS = {
    "split": """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(200 * sizeof(struct item));
    for (i = 0; i < 200; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 200; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 200; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
""",
    "dead": """
struct node { long acc; long pad1; long pad2; double unused; };
struct node *arr;
int main() {
    int i; int it; long s = 0;
    arr = (struct node*) malloc(160 * sizeof(struct node));
    for (i = 0; i < 160; i++) { arr[i].acc = i; arr[i].pad1 = 0;
        arr[i].pad2 = 0; }
    for (it = 0; it < 12; it++)
        for (i = 0; i < 160; i++) s += arr[i].acc;
    printf("s=%ld\\n", s);
    return 0;
}
""",
}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


# ---------------------------------------------------------------------------
# Gate 1: zero-cost-when-off
# ---------------------------------------------------------------------------

def check_overhead(bound_pct: float, repeats: int) -> None:
    sources = make_sources(n_units=4)

    def timed(tracer=None, metrics=None) -> float:
        opts = CompilerOptions(jobs=1, cache_dir=None)
        t0 = time.perf_counter()
        result = Compiler(opts, tracer=tracer,
                          metrics=metrics).compile_sources(sources)
        assert not result.diagnostics.has_errors
        return time.perf_counter() - t0

    timed()                               # warm interpreter / imports
    disabled = min(timed() for _ in range(repeats))
    enabled = min(timed(Tracer(), MetricsRegistry())
                  for _ in range(repeats))
    overhead = 100.0 * (enabled / disabled - 1.0)
    print(f"obs-smoke: disabled={disabled:.4f}s enabled={enabled:.4f}s "
          f"overhead={overhead:+.2f}% (bound {bound_pct:.1f}%)")
    # the gate is on the *disabled* path staying free: a regression
    # there shows up as the enabled/disabled gap collapsing from the
    # wrong side, or (the common bug) the disabled path paying for
    # span bookkeeping it should never touch
    if overhead > bound_pct:
        fail(f"tracing overhead {overhead:.2f}% exceeds "
             f"{bound_pct:.1f}% bound")


# ---------------------------------------------------------------------------
# Gate 2: live daemon, stitched + valid Chrome traces
# ---------------------------------------------------------------------------

SPINE = ("request", "attempt", "job", "compile")


def check_trace(name: str, reply: CompileReply, trace_dir: Path) -> None:
    where = f"workload {name!r}"
    if not reply.ok:
        fail(f"{where}: status {reply.status!r}, expected ok "
             f"(error={reply.error})")
    if not reply.trace_id:
        fail(f"{where}: traced request returned no trace_id")
    if not reply.spans:
        fail(f"{where}: traced request returned no spans")
    ids = {s["trace_id"] for s in reply.spans}
    if ids != {reply.trace_id}:
        fail(f"{where}: spans carry trace ids {ids}, "
             f"expected exactly {{{reply.trace_id!r}}}")
    names = {s["name"] for s in reply.spans}
    missing = [n for n in SPINE if n not in names]
    if missing:
        fail(f"{where}: span tree is missing the {missing} span(s); "
             f"got {sorted(names)}")
    # every span except the root must point at a parent in the tree
    by_id = {s["span_id"] for s in reply.spans}
    orphans = [s["name"] for s in reply.spans
               if s.get("parent_id") and s["parent_id"] not in by_id]
    if orphans:
        fail(f"{where}: orphaned spans (dangling parent_id): {orphans}")
    obj = chrome_trace(reply.spans)
    problems = validate_chrome_trace(obj)
    if problems:
        fail(f"{where}: invalid Chrome trace: {problems}")
    out = trace_dir / f"trace_{name}.json"
    out.write_text(json.dumps(obj, indent=2) + "\n")
    print(f"obs-smoke: {where}: {len(reply.spans)} spans, "
          f"trace {reply.trace_id} ok -> {out}")


def run_daemon_drill(trace_dir: Path) -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    sock = str(tmp / "repro.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--pool-size", "2", "--cache-dir", str(tmp / "cache")],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    try:
        if not wait_ready(sock, timeout=30.0):
            fail("daemon did not come up within 30s")
        for name, text in WORKLOADS.items():
            req = CompileRequest(
                op="compare", sources=[(f"{name}.c", text)],
                options=CompileOptions(), id=f"obs-{name}", trace=True)
            reply = CompileReply.from_wire(
                single_request(sock, req.to_wire(), timeout=120.0))
            check_trace(name, reply, trace_dir)
            # the supervisor must also serve the same trace back
            # through the control plane
            stored = single_request(
                sock, {"op": "trace", "trace_id": reply.trace_id},
                timeout=30.0)
            if stored.get("status") != "ok":
                fail(f"trace op failed for {reply.trace_id}: {stored}")
            if len(stored.get("spans") or []) != len(reply.spans):
                fail(f"trace op returned {len(stored.get('spans'))} "
                     f"spans, reply carried {len(reply.spans)}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--overhead-pct", type=float, default=5.0,
                    help="max %% slowdown with tracing enabled "
                         "(the disabled path must stay a no-op)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repetitions (best taken)")
    ap.add_argument("--trace-dir", default=None,
                    help="where to keep the exported traces "
                         "(default: a temp dir)")
    args = ap.parse_args(argv)

    trace_dir = Path(args.trace_dir or
                     tempfile.mkdtemp(prefix="repro-obs-traces-"))
    trace_dir.mkdir(parents=True, exist_ok=True)
    check_overhead(args.overhead_pct, max(args.repeats, 1))
    run_daemon_drill(trace_dir)
    print("obs-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
