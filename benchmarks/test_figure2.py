"""Figure 2 — the advisory tool's annotated type layout for mcf.

Regenerates the report of §3.2: per-type header (name, field count,
size, hotness, planned transformation, status/attributes), then per
field the hotness bar, weighted read/write counts with the R/w balance
bar, attributed d-cache misses and latency, and uni-directional
affinity edges.  VCG graph output is produced alongside.
"""

from conftest import once, save_result, lower_program

from repro.advisor import advisor_report, program_vcg
from repro.core import CompilerOptions, compile_program
from repro.workloads import MCF


def build_report(session):
    fb = session.feedback(MCF, "train", pmu_period=16)
    program = MCF.program("train")
    res = compile_program(program, CompilerOptions(
        scheme="PBO", feedback=fb, transform=False))
    text = advisor_report(res, feedback=fb)
    vcg = program_vcg(res.profiles)
    return res, text, vcg


def test_figure2(benchmark, session):
    res, text, vcg = once(benchmark, lambda: build_report(session))
    node_section = text[text.index("Type     : node"):]
    node_section = node_section.split("\nType     :")[0]
    print("\nFigure 2 — advisory report (node section)\n" + node_section)
    save_result("figure2.txt", text)
    save_result("figure2.vcg", vcg)

    # header block
    assert "Type     : node" in text
    assert "Fields   : 15," in text
    assert "Hotness  :" in text and "% rel," in text
    assert "Status   :" in text

    # node is the hottest type: listed first
    first_type = text.index("Type     : ")
    assert text[first_type:first_type + 40].startswith("Type     : node")

    # per-field annotations
    assert 'Field[0]' in node_section and '"number"' in node_section
    assert "*unused*" in node_section          # ident
    assert "read :" in node_section and "write:" in node_section
    assert "miss :" in node_section and "[cyc]" in node_section
    assert "aff:" in node_section

    # the hotness bar of the hottest field is full
    assert "|##########| \"potential\"" in node_section

    # read-dominated fields show uppercase R bars
    assert "|RRRR" in node_section

    # uni-directional affinity: 'time' (last field) lists no edge
    # to earlier fields like 'pred'
    time_at = node_section.index('"time"')
    time_sec = node_section[time_at:]
    assert "--> pred" not in time_sec

    # VCG output has one graph per type with nodes and edges
    assert vcg.count("graph: {") == len(res.profiles)
    assert 'node: { title: "potential"' in vcg
    assert "thickness:" in vcg
