"""§2.2's punchline — relaxation exposes types, not transformations.

"After relaxing the legality constraints, many more types are
transformable ... As a result, the number of transformed types remains
constant."  The paper estimated this with an internal flag tolerating
CSTT/CSTF/ATKN; the reproduction goes further and *verifies* each
tolerated type with the field-sensitive points-to analysis before
clearing its violations.

The bench compiles every workload both ways and asserts: (1) the set
of legal types grows substantially (20.9% -> 65.7% on average in the
paper), (2) the set of *transformed* types does not change at all —
the profitability filters, not the practical legality tests, are what
block the extra types.
"""

from conftest import once, save_result

from repro.core import CompilerOptions, compile_program


def build(session, workloads):
    rows = []
    for wl in workloads:
        plain = session.compiled(wl, input_set="ref")
        relaxed = compile_program(
            wl.program("ref"),
            CompilerOptions(relax_legality=True, transform=False))
        rows.append((
            wl.name,
            len(plain.legality.legal_types()),
            len(relaxed.legality.legal_types()),
            sorted(d.type_name for d in plain.transformed_types()),
            sorted(d.type_name for d in relaxed.decisions
                   if d.transformed),
        ))
    return rows


def test_relaxation_exposes_no_new_transformations(benchmark, session,
                                                   workloads):
    rows = once(benchmark, lambda: build(session, workloads))
    lines = [f"{'Benchmark':12s} {'legal':>6s} {'relaxed':>8s} "
             f"{'transformed':>24s}"]
    for name, legal, relaxed_legal, tt, ttr in rows:
        lines.append(f"{name:12s} {legal:6d} {relaxed_legal:8d} "
                     f"{','.join(tt) or '-':>24s}")
    text = "\n".join(lines)
    print("\n§2.2 — legality relaxation vs transformed types\n" + text)
    save_result("relaxation.txt", text)

    more_legal = 0
    for name, legal, relaxed_legal, tt, ttr in rows:
        # relaxation can only add legal types
        assert relaxed_legal >= legal, name
        if relaxed_legal > legal:
            more_legal += 1
        # ... but the transformed set is identical
        assert tt == ttr, name

    # relaxation genuinely exposes types on most benchmarks
    assert more_legal >= 10
