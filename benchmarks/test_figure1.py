"""Figure 1 — an array of record types (a), after splitting (b), and
after peeling (c).

Regenerates the paper's illustration with *concrete simulated
addresses*: a hot/cold interleaved struct array is laid out, split with
link pointers, and peeled; the bench prints each memory layout and
asserts the structural properties the figure conveys — hot fields
become contiguous, the cold parts move to a disjoint allocation, and
the link pointers wire the two together element by element.
"""

from conftest import once, save_result

from repro.frontend import Program
from repro.runtime import Machine, CompiledProgram
from repro.transform import (
    SplitSpec, split_structure, PeelSpec, peel_structure, LINK_FIELD,
)

SRC = """
struct rec { long hot1; long cold1; long hot2; long cold2; };
struct rec *P;
int main() {
    int i;
    P = (struct rec*) malloc(4 * sizeof(struct rec));
    for (i = 0; i < 4; i++) {
        P[i].hot1 = 10 + i;
        P[i].cold1 = 20 + i;
        P[i].hot2 = 30 + i;
        P[i].cold2 = 40 + i;
    }
    return 0;
}
"""


def run_and_dump(program):
    machine = Machine()
    compiled = CompiledProgram(program, machine)
    compiled.run()
    return machine, compiled


def addr_of_global(compiled, machine, name):
    sym = compiled.program.global_symbol(name)
    addr = compiled.global_addr(sym)
    return int(machine.memory.load(addr))


def layout_lines(machine, base, rec, count):
    lines = []
    for i in range(count):
        elem = base + i * rec.size
        parts = []
        for f in rec.fields:
            v = machine.memory.load(elem + f.offset)
            parts.append(f"{f.name}@0x{elem + f.offset:x}={int(v)}")
        lines.append(f"  [{i}] " + "  ".join(parts))
    return lines


def build_figure():
    out = ["(a) original array of interleaved hot/cold records"]
    p0 = Program.from_source(SRC)
    m0, c0 = run_and_dump(p0)
    base0 = addr_of_global(c0, m0, "P")
    rec0 = p0.record("rec")
    out += layout_lines(m0, base0, rec0, 4)

    out.append("\n(b) after structure splitting (link pointers)")
    spec = SplitSpec(record=p0.record("rec"),
                     cold_fields=["cold1", "cold2"], dead_fields=[])
    p1 = split_structure(p0, spec)
    m1, c1 = run_and_dump(p1)
    base1 = addr_of_global(c1, m1, "P")
    hot = p1.record("rec")
    cold = p1.record("rec__cold")
    out += layout_lines(m1, base1, hot, 4)
    link0 = int(m1.memory.load(
        base1 + hot.field(LINK_FIELD).offset))
    out.append("      cold parts:")
    out += layout_lines(m1, link0, cold, 4)

    out.append("\n(c) after structure peeling (one array per field)")
    spec2 = PeelSpec(record=p0.record("rec"), pointer="P",
                     groups=[["hot1"], ["cold1"], ["hot2"], ["cold2"]])
    p2 = peel_structure(p0, spec2)
    m2, c2 = run_and_dump(p2)
    for k, fname in enumerate(["hot1", "cold1", "hot2", "cold2"]):
        piece = p2.record(f"rec__p{k}")
        base = addr_of_global(c2, m2, f"P__p{k}")
        values = [int(m2.memory.load(base + i * piece.size))
                  for i in range(4)]
        out.append(f"  {fname}: base=0x{base:x} stride={piece.size} "
                   f"values={values}")

    return ("\n".join(out),
            (p0, m0, c0, base0),
            (p1, m1, c1, base1),
            (p2, m2, c2))


def test_figure1(benchmark):
    text, orig, split, peeled = once(benchmark, build_figure)
    print("\nFigure 1 — layouts before/after splitting and peeling\n"
          + text)
    save_result("figure1.txt", text)

    p0, m0, c0, base0 = orig
    rec0 = p0.record("rec")
    # (a): hot and cold interleaved within each element
    assert rec0.field_names() == ["hot1", "cold1", "hot2", "cold2"]
    assert rec0.size == 32

    p1, m1, c1, base1 = split
    hot = p1.record("rec")
    cold = p1.record("rec__cold")
    # (b): hot part holds only hot fields plus the link pointer
    assert hot.field_names() == ["hot1", "hot2", LINK_FIELD]
    assert cold.field_names() == ["cold1", "cold2"]
    assert hot.size < rec0.size
    # link pointers point at consecutive cold elements
    links = [int(m1.memory.load(base1 + i * hot.size +
                                hot.field(LINK_FIELD).offset))
             for i in range(4)]
    strides = [b - a for a, b in zip(links, links[1:])]
    assert all(s == cold.size for s in strides)
    # data survives: cold1 of element 2 is 22
    assert m1.memory.load(links[2] + cold.field("cold1").offset) == 22

    p2, m2, c2 = peeled
    # (c): four disjoint dense arrays, original type gone
    assert "rec" not in {r.name for r in p2.record_types()
                         if r.fields}
    for k in range(4):
        assert p2.record(f"rec__p{k}").size == 8
    base_h1 = addr_of_global(c2, m2, "P__p0")
    values = [int(m2.memory.load(base_h1 + i * 8)) for i in range(4)]
    assert values == [10, 11, 12, 13]
