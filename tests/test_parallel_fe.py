"""Determinism of the parallel front end.

The §2 contract: the FE is per-TU parallelizable, and parallelism is an
*execution strategy*, not a semantic knob — compiling with any
``--jobs`` value (or through the isolated-parse + unify path at all)
must produce exactly the program, decisions, diagnostics, and
transformed output that the serial front end produces.  Every multi-TU
construct the unify step cannot reproduce exactly must fall back to the
serial parser rather than diverge.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.core import Compiler, CompilerOptions, compile_program
from repro.core import fe
from repro.core.fe import assemble_program, prescan_typedef_names
from repro.frontend import Program
from repro.transform import program_sources
from repro.workloads import ALL_WORKLOADS

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


# ---------------------------------------------------------------------------
# typedef prescan
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("source,expected", [
    ("typedef int myint;", ["myint"]),
    ("typedef int (*cb)(int, char);", ["cb"]),
    ("typedef struct s { int a; } S;", ["S"]),
    ("typedef int arr[4];", ["arr"]),
    ("/* typedef int hidden; */ int x;", []),
    ('char *s = "typedef int fake;";', []),
    ("typedef unsigned long long ull;\ntypedef struct pt pt_t;",
     ["ull", "pt_t"]),
])
def test_prescan_typedef_names(source, expected):
    assert prescan_typedef_names(source) == expected


# ---------------------------------------------------------------------------
# serial == parallel == legacy
# ---------------------------------------------------------------------------

def result_fingerprint(result):
    """Everything user-visible about one compilation."""
    return (
        [(d.type_name, d.action, sorted(d.cold_fields),
          sorted(d.dead_fields), sorted(map(tuple, d.groups or [])))
         for d in result.decisions],
        result.diagnostics.render("warning"),
        program_sources(result.transformed),
    )


def compile_legacy(sources):
    return compile_program(Program.from_sources(sources, recover=True))


def compile_jobs(sources, jobs):
    return Compiler(CompilerOptions(jobs=jobs)).compile_sources(sources)


@pytest.fixture
def many_cores(monkeypatch):
    """Defeat the core-count clamp so the pool path runs even on a
    single-core machine."""
    monkeypatch.setattr(fe.os, "cpu_count", lambda: 4)


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_workloads_serial_equals_parallel(workload, many_cores):
    sources = workload.sources("train")
    want = result_fingerprint(compile_legacy(sources))
    assert result_fingerprint(compile_jobs(sources, 1)) == want
    assert result_fingerprint(compile_jobs(sources, 4)) == want


def test_quickstart_example_serial_equals_parallel(many_cores):
    spec = importlib.util.spec_from_file_location(
        "quickstart", EXAMPLES / "quickstart.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    sources = [("quickstart.c", mod.SOURCE)]
    want = result_fingerprint(compile_legacy(sources))
    assert result_fingerprint(compile_jobs(sources, 4)) == want


MULTI_TU = [
    ("a.c", """
typedef struct node node_t;
struct node { int key; int pad; node_t *next; };
node_t *mk(int k) {
  node_t *n = (node_t*)malloc(sizeof(node_t));
  n->key = k; n->next = 0; return n;
}
"""),
    ("b.c", """
struct node;
typedef struct node node2_t;
struct node *mk(int k);
int sum(node2_t *n) {
  int s = 0;
  while (n) { s = s + n->key; n = n->next; }
  return s;
}
"""),
    ("c.c", """
struct node;
struct node *mk(int k);
int sum(struct node *n);
int main() { printf("%d\\n", sum(mk(7))); return 0; }
"""),
]


def test_multi_tu_serial_equals_parallel(many_cores):
    want = result_fingerprint(compile_legacy(MULTI_TU))
    for jobs in (1, 2, 4):
        assert result_fingerprint(compile_jobs(MULTI_TU, jobs)) == want


def test_unit_order_is_preserved(many_cores):
    prog, report = assemble_program(MULTI_TU, jobs=4, recover=True)
    assert [u.name for u in prog.units] == ["a.c", "b.c", "c.c"]
    assert report.mode == "unified"


# ---------------------------------------------------------------------------
# fallback: anything unify cannot reproduce goes through the serial path
# ---------------------------------------------------------------------------

FALLBACK_PROGRAMS = {
    # struct defined in two units: legacy merges order-sensitively
    "redefinition": [
        ("a.c", "struct s { int a; };\nint f() { return 0; }"),
        ("b.c", "struct s { int a; };\nint main() { return f(); }"),
    ],
    # typedef defined in two units
    "typedef-dup": [
        ("a.c", "typedef int t;\nt f() { return 1; }"),
        ("b.c", "typedef int t;\nint main() { return f(); }"),
    ],
    # parse error: diagnostics depend on serial recovery
    "parse-error": [
        ("a.c", "struct s { int a; };\nint f( { return 0; }"),
        ("b.c", "int main() { return 0; }"),
    ],
}


@pytest.mark.parametrize("name", sorted(FALLBACK_PROGRAMS))
def test_fallback_matches_legacy(name, many_cores):
    sources = FALLBACK_PROGRAMS[name]
    prog, report = assemble_program(sources, jobs=4, recover=True)
    assert report.mode == "legacy"
    assert report.fallback_reason
    legacy = Program.from_sources(sources, recover=True)
    assert [u.name for u in prog.units] == [u.name for u in legacy.units]
    assert [(e.unit, e.line, e.message) for e in prog.frontend_errors] \
        == [(e.unit, e.line, e.message) for e in legacy.frontend_errors]
    want = result_fingerprint(compile_legacy(sources))
    assert result_fingerprint(compile_jobs(sources, 4)) == want


def test_from_sources_jobs_kwarg(many_cores):
    serial = Program.from_sources(MULTI_TU, recover=True)
    parallel = Program.from_sources(MULTI_TU, recover=True, jobs=4)
    assert [u.name for u in parallel.units] == \
        [u.name for u in serial.units]
    assert sorted(parallel.records) == sorted(serial.records)
    for name, rec in serial.records.items():
        other = parallel.records[name]
        assert [(f.name, f.offset) for f in rec.fields] == \
            [(f.name, f.offset) for f in other.fields]
        assert rec.size == other.size


def test_jobs_validation():
    with pytest.raises(ValueError):
        CompilerOptions(jobs=0)
