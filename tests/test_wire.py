"""Garbage-peer suite for the hardened wire layer.

Feeds every kind of hostile or broken peer input — binary noise,
truncated JSON, huge single lines, unsupported protocol versions,
half-open connects, mid-request disconnects — to all three
``LineServer`` subclasses (compile daemon, router, cache service) and
asserts the invariant the wire contract promises: **a structured
response or a clean close, never an OOM, never a leaked connection
thread, and the daemon still serves afterward.**

Also covers the client side of the contract: bounded reply reads
(oversize surfaces as a structured ``ApiError``), multi-endpoint
failover/rediscovery, and protocol-version stamping.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import ApiError
from repro.service import (
    CacheServer, CacheStore, ClusterConfig, CompileServer, LineServer,
    ProtocolError, Router, RouterServer, ServiceClient, ShardSpec,
    Supervisor, SupervisorConfig, encode, single_request, wait_ready,
)
from repro.service.wire import (
    BoundedLineReader, OversizedReplyError, PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS, parse_endpoints,
)

#: small enough that oversize tests are instant, big enough for any
#: legitimate frame the suite sends
WIRE_KW = dict(max_request_bytes=64_000, idle_timeout=30.0,
               max_connections=32)


def _tmpdir() -> str:
    # short paths: AF_UNIX socket paths are length-limited (~107 bytes)
    return tempfile.mkdtemp(prefix="repro-wire-", dir="/tmp")


def conn_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate()
            if t.name.endswith("-conn") and t.is_alive()]


def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def raw_conn(path: str) -> socket.socket:
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10.0)
    s.connect(path)
    return s


def read_reply(s: socket.socket) -> dict | None:
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
    return json.loads(buf) if buf else None


@contextmanager
def make_server(kind: str, **wire_overrides):
    """A running LineServer of the requested kind on a fresh socket."""
    tmp = _tmpdir()
    wire = {**WIRE_KW, **wire_overrides}
    path = os.path.join(tmp, "srv.sock")
    if kind == "daemon":
        srv = CompileServer(
            path, Supervisor(SupervisorConfig(
                pool_size=1, cache_dir=os.path.join(tmp, "cache"))),
            queue_max=4, **wire)
    elif kind == "router":
        cluster = ClusterConfig(shards=[ShardSpec(
            name="s0", socket=os.path.join(tmp, "missing.sock"))])
        srv = RouterServer(path, Router(cluster), **wire)
    elif kind == "cache":
        srv = CacheServer(path, CacheStore(os.path.join(tmp, "store")),
                          **wire)
    else:  # pragma: no cover
        raise AssertionError(kind)
    srv.start()
    assert wait_ready(path, timeout=30)
    try:
        yield srv, path
    finally:
        srv.shutdown()


@pytest.fixture(scope="module", params=["daemon", "router", "cache"])
def server(request):
    with make_server(request.param) as pair:
        yield pair


# ---------------------------------------------------------------------------
# Garbage peers against every LineServer subclass
# ---------------------------------------------------------------------------

class TestGarbagePeers:
    def test_binary_noise_gets_structured_error(self, server):
        _, path = server
        s = raw_conn(path)
        s.sendall(b"\x00\x01\xfePK\x03\x04 not json at all\n")
        resp = read_reply(s)
        assert resp["status"] == "error"
        assert resp["v"] == PROTOCOL_VERSION
        # the connection is still usable after the bad frame
        s.sendall(encode({"op": "ping"}))
        assert read_reply(s)["pong"] is True
        s.close()

    def test_truncated_json_then_disconnect(self, server):
        _, path = server
        s = raw_conn(path)
        s.sendall(b'{"op": "ping"')   # no closing brace, no newline
        s.close()
        assert single_request(path, {"op": "ping"})["pong"] is True

    def test_oversized_line_answered_and_resynced(self, server):
        srv, path = server
        before = srv.connection_stats()["oversized"]
        s = raw_conn(path)
        # 8 MB single line against a 64 KB cap: the discard path must
        # stay memory-bounded and leave the stream usable
        s.sendall(b'{"pad": "' + b"A" * 8_000_000 + b'"}\n')
        resp = read_reply(s)
        assert resp["status"] == "error"
        assert resp["error"]["reason"] == "oversized"
        assert resp["error"]["max_request_bytes"] \
            == srv.max_request_bytes
        s.sendall(encode({"op": "ping"}))
        assert read_reply(s)["pong"] is True
        s.close()
        assert srv.connection_stats()["oversized"] == before + 1

    def test_wrong_version_gets_protocol_error(self, server):
        srv, path = server
        before = srv.connection_stats()["bad_version"]
        s = raw_conn(path)
        s.sendall(encode({"op": "ping", "id": 3, "v": 99}))
        resp = read_reply(s)
        assert resp["status"] == "error"
        assert resp["id"] == 3
        assert resp["error"]["reason"] == "protocol_error"
        assert resp["error"]["supported"] \
            == list(SUPPORTED_PROTOCOL_VERSIONS)
        # refused structurally, not disconnected: the same connection
        # can speak a supported version immediately
        s.sendall(encode({"op": "ping", "v": PROTOCOL_VERSION}))
        assert read_reply(s)["pong"] is True
        s.close()
        assert srv.connection_stats()["bad_version"] == before + 1

    def test_mid_request_disconnect_survives(self, server):
        _, path = server
        s = raw_conn(path)
        s.sendall(encode({"op": "stats"}))
        s.close()                     # gone before the reply lands
        assert single_request(path, {"op": "ping"})["pong"] is True

    def test_no_leaked_connection_threads(self, server):
        _, path = server
        for _ in range(5):
            s = raw_conn(path)
            s.sendall(b"junk that is not json\n")
            read_reply(s)
            s.close()
        assert wait_for(lambda: len(conn_threads()) == 0), \
            f"leaked connection threads: {conn_threads()}"

    def test_connections_stats_block(self, server):
        srv, path = server
        stats = single_request(path, {"op": "stats"})["stats"]
        block = stats["connections"]
        for key in ("open", "accepted", "evicted_idle", "oversized",
                    "bad_version"):
            assert key in block
        assert block == srv.connection_stats() or \
            block["max_connections"] == srv.max_connections


# ---------------------------------------------------------------------------
# Idle timeout: half-open peers, including the pre-first-byte window
# ---------------------------------------------------------------------------

class TestIdleTimeout:
    def test_half_open_connect_is_reaped(self):
        """Regression: a peer that connects and never sends a byte
        used to hold its connection thread until process exit."""
        with make_server("cache", idle_timeout=0.4) as (srv, path):
            s = raw_conn(path)        # say nothing
            assert wait_for(
                lambda: srv.connection_stats()["open"] == 0)
            assert srv.connection_stats()["evicted_idle"] >= 1
            # the server closed its end: our recv sees EOF
            s.settimeout(3.0)
            assert s.recv(1) == b""
            s.close()
            assert wait_for(lambda: len(conn_threads()) == 0)

    def test_idle_mid_line_is_reaped(self):
        with make_server("cache", idle_timeout=0.4) as (srv, path):
            s = raw_conn(path)
            s.sendall(b'{"op": "pi')  # stall mid-frame forever
            assert wait_for(
                lambda: srv.connection_stats()["open"] == 0)
            s.settimeout(3.0)
            assert s.recv(1) == b""
            s.close()

    def test_active_connection_outlives_idle_window(self):
        with make_server("cache", idle_timeout=0.5) as (_, path):
            s = raw_conn(path)
            for _ in range(4):
                time.sleep(0.3)       # each gap < idle_timeout
                s.sendall(encode({"op": "ping"}))
                assert read_reply(s)["pong"] is True
            s.close()


# ---------------------------------------------------------------------------
# Connection cap
# ---------------------------------------------------------------------------

class TestConnectionCap:
    def test_idlest_connection_evicted_past_cap(self):
        with make_server("cache", max_connections=4) as (srv, path):
            conns = [raw_conn(path) for _ in range(4)]
            # touch all but conns[0], making it the idlest
            time.sleep(0.05)
            for s in conns[1:]:
                s.sendall(encode({"op": "ping"}))
                assert read_reply(s)["pong"] is True
            extra = raw_conn(path)
            extra.sendall(encode({"op": "ping"}))
            assert read_reply(extra)["pong"] is True
            # conns[0] lost its slot: EOF on our end
            conns[0].settimeout(3.0)
            assert conns[0].recv(1) == b""
            assert srv.connection_stats()["evicted_idle"] >= 1
            assert srv.connection_stats()["open"] <= 4
            for s in conns + [extra]:
                s.close()


# ---------------------------------------------------------------------------
# Client side: bounded replies, failover, version stamping
# ---------------------------------------------------------------------------

class _BigReplyServer(LineServer):
    """Answers every request with a reply far past the test client's
    bound."""

    def handle_request(self, raw: dict) -> dict:
        return {"id": raw.get("id"), "op": raw.get("op"),
                "status": "ok", "pad": "A" * 500_000}


class _TaggedServer(LineServer):
    """Pongs tagged with the server's name, for failover assertions."""

    def __init__(self, socket_path: str, tag: str, **wire):
        super().__init__(socket_path, **wire)
        self.tag = tag

    def handle_request(self, raw: dict) -> dict:
        return {"id": raw.get("id"), "op": raw.get("op"),
                "status": "ok", "pong": True, "served_by": self.tag}


class TestClientSide:
    def test_oversized_reply_is_structured_api_error(self):
        tmp = _tmpdir()
        path = os.path.join(tmp, "big.sock")
        srv = _BigReplyServer(path)
        srv.start()
        try:
            client = ServiceClient(path, timeout=10.0,
                                   max_reply_bytes=10_000)
            with pytest.raises(ApiError) as excinfo:
                client.request({"op": "ping"})
            err = excinfo.value
            assert isinstance(err, OversizedReplyError)
            assert isinstance(err, ProtocolError)
            assert err.detail["reason"] == "oversized_reply"
            assert err.detail["max_reply_bytes"] == 10_000
            client.close()
        finally:
            srv.shutdown()

    def test_multi_endpoint_failover_and_rediscovery(self):
        tmp = _tmpdir()
        a_path = os.path.join(tmp, "a.sock")
        b_path = os.path.join(tmp, "b.sock")
        a = _TaggedServer(a_path, "A")
        b = _TaggedServer(b_path, "B")
        a.start()
        b.start()
        try:
            client = ServiceClient(f"unix:{a_path},unix:{b_path}",
                                   timeout=10.0)
            assert client.endpoints == [a_path, b_path]
            assert client.request({"op": "ping"})["served_by"] == "A"
            # kill the preferred endpoint: the next request fails over
            a.shutdown()
            assert client.request({"op": "ping"})["served_by"] == "B"
            assert client.endpoint == b_path
            # bring A back: a reconnect rediscovers the preferred
            # endpoint because connect() re-walks the list in order
            a2 = _TaggedServer(a_path, "A2")
            a2.start()
            try:
                client.close()
                assert client.request({"op": "ping"})["served_by"] \
                    == "A2"
            finally:
                a2.shutdown()
            client.close()
        finally:
            b.shutdown()

    def test_client_stamps_protocol_version(self):
        tmp = _tmpdir()
        path = os.path.join(tmp, "echo.sock")

        seen: list[dict] = []

        class EchoServer(LineServer):
            def handle_request(self, raw: dict) -> dict:
                seen.append(dict(raw))
                return {"id": raw.get("id"), "op": raw.get("op"),
                        "status": "ok", "pong": True}

        srv = EchoServer(path)
        srv.start()
        try:
            resp = single_request(path, {"op": "ping"})
            # the response is stamped; the request's `v` was consumed
            # by the transport layer before handle_request saw it
            assert resp["v"] == PROTOCOL_VERSION
            assert seen and "v" not in seen[0]
        finally:
            srv.shutdown()


# ---------------------------------------------------------------------------
# Units: reader and endpoint parsing
# ---------------------------------------------------------------------------

class TestBoundedLineReader:
    def _pair(self, max_bytes=100):
        a, b = socket.socketpair()
        return BoundedLineReader(a, max_bytes), a, b

    def test_lines_and_eof(self):
        reader, a, b = self._pair()
        b.sendall(b"one\ntwo\n")
        b.close()
        assert reader.readline() == (b"one\n", False)
        assert reader.readline() == (b"two\n", False)
        assert reader.readline() == (None, False)
        a.close()

    def test_oversized_then_resync(self):
        reader, a, b = self._pair(max_bytes=10)
        b.sendall(b"X" * 50 + b"\nok\n")
        assert reader.readline() == (b"", True)
        assert reader.readline() == (b"ok\n", False)
        a.close()
        b.close()

    def test_oversized_eof_before_newline(self):
        reader, a, b = self._pair(max_bytes=10)
        b.sendall(b"X" * 50)
        b.close()
        assert reader.readline() == (None, True)
        a.close()

    def test_unterminated_final_line(self):
        reader, a, b = self._pair()
        b.sendall(b"tail-no-newline")
        b.close()
        assert reader.readline() == (b"tail-no-newline", False)
        assert reader.readline() == (None, False)
        a.close()


class TestParseEndpoints:
    def test_single_plain_path(self):
        assert parse_endpoints("/tmp/x.sock") == ["/tmp/x.sock"]

    def test_single_unix_prefix(self):
        assert parse_endpoints("unix:/tmp/x.sock") == ["/tmp/x.sock"]

    def test_multi_mixed(self):
        assert parse_endpoints("unix:/t/a.sock, /t/b.sock") \
            == ["/t/a.sock", "/t/b.sock"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_endpoints(" , ")
