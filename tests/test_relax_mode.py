"""Pipeline-level tests of the verified relaxation mode (§2.2)."""

from repro.core import CompilerOptions, compile_source
from repro.runtime import run_program

ATKN_SAFE = """
struct t { long a; long b; long c; };
struct t *g;
int main() {
    int i; int it; long s = 0;
    g = (struct t*) malloc(200 * sizeof(struct t));
    for (i = 0; i < 200; i++) { g[i].a = i; g[i].b = 2 * i; g[i].c = i; }
    long *pa = &g[5].a;          /* ATKN, but field-contained */
    pa[0] = 99;
    for (it = 0; it < 15; it++) {
        for (i = 0; i < 200; i++) {
            long w = 0;
            while (w < 2) { s += g[i].a + g[i].b; w++; }
        }
    }
    for (i = 0; i < 200; i++) s += g[i].c;
    printf("%ld", s);
    return 0;
}
"""


class TestRelaxMode:
    def test_plain_compile_blocks_atkn(self):
        res = compile_source(ATKN_SAFE)
        assert not res.legality.info("t").is_legal()
        assert res.transformed_types() == []

    def test_relax_unblocks_field_safe_type(self):
        res = compile_source(ATKN_SAFE,
                             CompilerOptions(relax_legality=True))
        assert res.legality.info("t").is_legal()
        assert len(res.transformed_types()) == 1

    def test_relaxed_transformation_preserves_output(self):
        res = compile_source(ATKN_SAFE,
                             CompilerOptions(relax_legality=True))
        before = run_program(res.program)
        after = run_program(res.transformed)
        assert before.stdout == after.stdout

    def test_relax_does_not_unblock_collapsed_type(self):
        src = ATKN_SAFE.replace(
            "long *pa = &g[5].a;          /* ATKN, but field-contained */\n"
            "    pa[0] = 99;",
            "long *pa = &g[5].a;\n"
            "    pa = pa + 1;             /* walks into field b */\n"
            "    pa[0] = 99;")
        res = compile_source(src, CompilerOptions(relax_legality=True))
        assert not res.legality.info("t").is_legal()
        assert res.transformed_types() == []

    def test_relax_does_not_unblock_hard_reasons(self):
        src = ATKN_SAFE.replace(
            'printf("%ld", s);',
            'fwrite(g, sizeof(struct t), 200, NULL); printf("%ld", s);')
        res = compile_source(src, CompilerOptions(relax_legality=True))
        assert not res.legality.info("t").is_legal()

    def test_relax_mixed_reason_stays_blocked(self):
        """ATKN plus MSET: the relaxable subset alone is insufficient."""
        src = ATKN_SAFE.replace(
            'printf("%ld", s);',
            'memset(g, 0, 200 * sizeof(struct t)); printf("%ld", s);')
        res = compile_source(src, CompilerOptions(relax_legality=True))
        info = res.legality.info("t")
        assert "MSET" in info.invalid_reasons
        assert "ATKN" in info.invalid_reasons   # not cleared either
