"""Malformed input: the frontend degrades gracefully and the CLI
reports structured errors with the right exit codes."""

import pytest

from repro.cli import main
from repro.frontend import ParseError, Program, tokenize
from repro.frontend.parser import Parser

TWO_ERRORS = """
struct a { long x  long y; };
struct b { long z; };
int ok(void) { return 1; }
int broken(void) { return 1 + ; }
int main() { printf("%d\\n", ok()); return 0; }
"""

TRUNCATED = "struct s { long a;\n"


class TestParserRecovery:
    def test_default_still_raises(self):
        with pytest.raises(ParseError):
            Program.from_source(TWO_ERRORS)

    def test_recovery_collects_every_error(self):
        program = Program.from_source(TWO_ERRORS, recover=True)
        assert len(program.frontend_errors) == 2
        lines = sorted(e.line for e in program.frontend_errors)
        assert lines == [2, 5]

    def test_recovery_keeps_good_decls(self):
        program = Program.from_source(TWO_ERRORS, recover=True)
        unit = program.units[0]
        names = [f.name for f in unit.functions()]
        assert "ok" in names
        assert "main" in names
        assert any(r.name == "b" for r in unit.records())

    def test_truncated_struct_reported(self):
        program = Program.from_source(TRUNCATED, recover=True)
        assert len(program.frontend_errors) == 1

    def test_parser_error_list(self):
        tokens = tokenize(TWO_ERRORS, "u.c")
        parser = Parser(tokens, "u.c", recover=True)
        parser.parse_translation_unit()
        assert len(parser.errors) == 2
        assert all(isinstance(e, ParseError) for e in parser.errors)


class TestDegenerateSources:
    def test_empty_file(self):
        program = Program.from_source("", recover=True)
        assert program.frontend_errors == []
        assert program.units[0].functions() == []

    def test_comments_only_file(self):
        src = "/* nothing here */\n// or here\n"
        program = Program.from_source(src, recover=True)
        assert program.frontend_errors == []
        assert program.units[0].functions() == []


class TestCliErrors:
    def test_missing_file_exits_2(self, capsys):
        rc = main(["analyze", "/nonexistent/missing.c"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_directory_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_two_error_source_reports_both(self, tmp_path, capsys):
        p = tmp_path / "bad.c"
        p.write_text(TWO_ERRORS)
        assert main(["analyze", str(p)]) == 1
        err = capsys.readouterr().err
        assert err.count("repro: error: bad.c:") == 2

    def test_empty_file_compiles_clean(self, tmp_path, capsys):
        p = tmp_path / "empty.c"
        p.write_text("")
        assert main(["analyze", str(p)]) == 0
        assert "record types: 0" in capsys.readouterr().out

    def test_comments_only_file_compiles_clean(self, tmp_path, capsys):
        p = tmp_path / "c.c"
        p.write_text("/* just a comment */\n")
        assert main(["analyze", str(p)]) == 0

    def test_truncated_struct_exits_1(self, tmp_path, capsys):
        p = tmp_path / "t.c"
        p.write_text(TRUNCATED)
        assert main(["analyze", str(p)]) == 1
        assert "repro: error: t.c:" in capsys.readouterr().err
