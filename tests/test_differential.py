"""Differential testing: randomized programs through the full pipeline.

Generates small MiniC programs over a dynamically allocated struct
array (random field counts, access mixes, loop shapes), compiles them
with the full FE→IPA→BE pipeline, and checks that the transformed
program produces byte-identical output.  This is the transformation-
correctness safety net: any legality or rewriting bug shows up as an
output divergence.
"""

from hypothesis import given, settings, strategies as st, HealthCheck

from repro.core import CompilerOptions, compile_program
from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import HeuristicParams


@st.composite
def struct_programs(draw):
    n_fields = draw(st.integers(2, 6))
    kinds = draw(st.lists(st.sampled_from(["long", "double", "int"]),
                          min_size=n_fields, max_size=n_fields))
    n_elems = draw(st.integers(4, 24))
    hot_iters = draw(st.integers(1, 6))
    hot_fields = draw(st.lists(st.integers(0, n_fields - 1), min_size=1,
                               max_size=3, unique=True))
    cold_fields = draw(st.lists(st.integers(0, n_fields - 1),
                                min_size=0, max_size=2, unique=True))
    use_free = draw(st.booleans())
    use_local_ptr = draw(st.booleans())
    write_only = draw(st.integers(-1, n_fields - 1))

    fields = "\n".join(f"    {k} f{i};" for i, k in enumerate(kinds))
    init = "\n".join(
        f"        R[i].f{i_} = " +
        (f"(double) i * 0.5;" if kinds[i_] == "double"
         else f"i * {i_ + 1};")
        for i_ in range(n_fields))
    hot_terms = " + ".join(f"(long) R[i].f{f}" for f in hot_fields)
    cold_stmts = "\n".join(
        f"        acc += (long) R[i].f{f};" for f in cold_fields)
    wo_stmt = f"        R[i].f{write_only} = 1;" \
        if write_only >= 0 else ""
    ptr_decl = "struct rec *cursor = R; acc += (long) cursor->f0;" \
        if use_local_ptr else ""
    free_stmt = "free(R);" if use_free else ""

    return f"""
struct rec {{
{fields}
}};
struct rec *R;
int main() {{
    int i; int it; long acc = 0;
    R = (struct rec*) malloc({n_elems} * sizeof(struct rec));
    for (i = 0; i < {n_elems}; i++) {{
{init}
    }}
    for (it = 0; it < {hot_iters}; it++)
        for (i = 0; i < {n_elems}; i++)
            acc += {hot_terms};
    for (i = 0; i < {n_elems}; i++) {{
{cold_stmts}
{wo_stmt}
    }}
    {ptr_decl}
    {free_stmt}
    printf("%ld", acc);
    return 0;
}}
"""


_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(struct_programs())
def test_pipeline_preserves_output(src):
    program = Program.from_source(src)
    result = compile_program(program)
    before = run_program(result.program)
    after = run_program(result.transformed)
    assert before.stdout == after.stdout
    assert before.exit_code == after.exit_code


@_SETTINGS
@given(struct_programs(), st.sampled_from(["per-field", "hot-cold",
                                           "affinity"]))
def test_all_peel_modes_preserve_output(src, mode):
    program = Program.from_source(src)
    result = compile_program(
        program,
        CompilerOptions(params=HeuristicParams(peel_mode=mode)))
    before = run_program(result.program)
    after = run_program(result.transformed)
    assert before.stdout == after.stdout


@_SETTINGS
@given(struct_programs())
def test_spbo_scheme_preserves_output(src):
    program = Program.from_source(src)
    result = compile_program(program, CompilerOptions(scheme="SPBO"))
    before = run_program(result.program)
    after = run_program(result.transformed)
    assert before.stdout == after.stdout
