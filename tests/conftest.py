"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.frontend import Program
from repro.runtime import run_program


@pytest.fixture
def run():
    """Compile MiniC source on a fresh machine and return the result."""
    def _run(source: str, **kwargs):
        return run_program(Program.from_source(source), **kwargs)
    return _run


@pytest.fixture
def stdout_of(run):
    """Run a program and return its stdout text."""
    def _stdout(source: str, **kwargs) -> str:
        result = run(source, **kwargs)
        assert result.exit_code == 0, \
            f"exit {result.exit_code}: {result.stdout}"
        return result.stdout
    return _stdout


def wrap_main(body: str) -> str:
    """Wrap statements into a main function."""
    return "int main() {\n" + body + "\nreturn 0;\n}\n"
