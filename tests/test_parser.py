"""Parser tests."""

import pytest

from repro.frontend import ast
from repro.frontend.parser import parse, parse_expr, ParseError


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_parens_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.left, ast.Binary) and e.left.op == "-"

    def test_assignment_right_associative(self):
        e = parse_expr("a = b = c")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = parse_expr("a += 2")
        assert isinstance(e, ast.Assign) and e.op == "+="

    def test_conditional(self):
        e = parse_expr("a ? b : c")
        assert isinstance(e, ast.Conditional)

    def test_nested_conditional_right_assoc(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e.els, ast.Conditional)

    def test_comma_expression(self):
        e = parse_expr("a, b, c")
        assert isinstance(e, ast.Comma)
        assert len(e.parts) == 3

    def test_unary_chain(self):
        e = parse_expr("!*&x")
        assert isinstance(e, ast.Unary) and e.op == "!"
        assert e.operand.op == "*"
        assert e.operand.operand.op == "&"

    def test_postfix_incr(self):
        e = parse_expr("x++")
        assert isinstance(e, ast.Unary) and e.op == "p++"

    def test_prefix_incr(self):
        e = parse_expr("++x")
        assert e.op == "++"

    def test_member_chain(self):
        e = parse_expr("a.b->c")
        assert isinstance(e, ast.Member) and e.name == "c" and e.arrow
        assert isinstance(e.base, ast.Member) and not e.base.arrow

    def test_index_and_call(self):
        e = parse_expr("f(1, 2)[3]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Call)
        assert len(e.base.args) == 2

    def test_call_no_args(self):
        e = parse_expr("f()")
        assert isinstance(e, ast.Call) and e.args == []

    def test_callee_name(self):
        assert parse_expr("foo(1)").callee_name == "foo"
        assert parse_expr("(*fp)(1)").callee_name is None

    def test_null_literal(self):
        assert isinstance(parse_expr("NULL"), ast.NullLit)

    def test_string_literal(self):
        e = parse_expr('"hi"')
        assert isinstance(e, ast.StrLit) and e.value == "hi"

    def test_logical_operators(self):
        e = parse_expr("a && b || c")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_shift_precedence(self):
        e = parse_expr("a + b << c")
        assert e.op == "<<"

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")


class TestCastsAndSizeof:
    def test_sizeof_type(self):
        unit = parse("struct s { int x; }; long n = sizeof(struct s);")
        init = unit.globals()[0].init
        assert isinstance(init, ast.SizeofType)

    def test_sizeof_expr(self):
        e = parse_expr("sizeof x")
        assert isinstance(e, ast.SizeofExpr)

    def test_cast_basic(self):
        e = parse_expr("(int) 3.5")
        assert isinstance(e, ast.Cast)
        assert str(e.to) == "int"

    def test_cast_pointer(self):
        unit = parse("struct s { int x; }; "
                     "int f() { int y = ((struct s*) 0) == NULL; "
                     "return y; }")
        assert unit is not None

    def test_paren_expr_not_cast(self):
        e = parse_expr("(a) + 1")
        assert isinstance(e, ast.Binary)


class TestDeclarations:
    def test_struct_definition(self):
        unit = parse("struct p { int x; double y; };")
        rec = unit.records()[0]
        assert rec.name == "p"
        assert rec.field_names() == ["x", "y"]

    def test_struct_pointer_field(self):
        unit = parse("struct n { struct n *next; long v; };")
        rec = unit.records()[0]
        assert rec.field("next").type.is_pointer()

    def test_bitfield_parsing(self):
        unit = parse("struct b { int x : 3; int y : 5; };")
        rec = unit.records()[0]
        assert rec.field("x").bit_width == 3

    def test_typedef(self):
        unit = parse("typedef struct q q_t; struct q { int v; }; "
                     "q_t *g;")
        g = unit.globals()[0]
        assert g.decl_type.is_pointer()

    def test_typedef_scalar(self):
        unit = parse("typedef long size_type; size_type n;")
        assert unit.globals()[0].decl_type.strip().size == 8

    def test_global_array(self):
        unit = parse("int table[16];")
        t = unit.globals()[0].decl_type
        assert t.is_array() and t.length == 16

    def test_two_dimensional_array(self):
        unit = parse("int grid[4][8];")
        t = unit.globals()[0].decl_type
        assert t.size == 4 * 8 * 4

    def test_multiple_declarators(self):
        unit = parse("int a, b, c;")
        assert [g.name for g in unit.globals()] == ["a", "b", "c"]

    def test_global_with_init(self):
        unit = parse("int x = 42;")
        assert unit.globals()[0].init.value == 42

    def test_static_global(self):
        unit = parse("static int hidden;")
        assert unit.globals()[0].is_static

    def test_function_pointer_global(self):
        unit = parse("void (*handler)(int);")
        t = unit.globals()[0].decl_type
        assert t.is_pointer() and t.pointee.is_function()

    def test_function_prototype(self):
        unit = parse("int add(int a, int b);")
        fns = [d for d in unit.decls if isinstance(d, ast.FunctionDef)]
        assert len(fns) == 1 and not fns[0].is_definition

    def test_function_returning_pointer(self):
        unit = parse("struct s { int x; }; "
                     "struct s *get(void) { return NULL; }")
        fn = unit.functions()[0]
        assert fn.ret_type.is_pointer()

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions()[0].params == []

    def test_array_param_decays(self):
        unit = parse("long total(long v[10]) { return v[0]; }")
        assert unit.functions()[0].params[0].type.is_pointer()

    def test_struct_redefinition_raises(self):
        with pytest.raises(ParseError):
            parse("struct s { int x; }; struct s { int y; };")

    def test_unknown_type_raises(self):
        with pytest.raises(ParseError):
            parse("unknown_t x;")


class TestStatements:
    def source_fn(self, body):
        return parse("int f() {" + body + "}").functions()[0]

    def test_if_else(self):
        fn = self.source_fn("if (1) return 2; else return 3;")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.If) and stmt.els is not None

    def test_dangling_else_binds_inner(self):
        fn = self.source_fn("if (1) if (2) return 1; else return 2; "
                            "return 0;")
        outer = fn.body.stmts[0]
        assert outer.els is None
        assert outer.then.els is not None

    def test_while(self):
        fn = self.source_fn("while (1) break;")
        assert isinstance(fn.body.stmts[0], ast.While)

    def test_do_while(self):
        fn = self.source_fn("do { } while (0);")
        assert isinstance(fn.body.stmts[0], ast.DoWhile)

    def test_for_full(self):
        fn = self.source_fn("int i; for (i = 0; i < 10; i++) continue;")
        stmt = fn.body.stmts[1]
        assert isinstance(stmt, ast.For)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_with_decl(self):
        fn = self.source_fn("for (int i = 0; i < 3; i++) { }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        fn = self.source_fn("for (;;) break;")
        stmt = fn.body.stmts[0]
        assert stmt.init is None and stmt.cond is None

    def test_local_decl_with_init(self):
        fn = self.source_fn("int x = 5; return x;")
        decl = fn.body.stmts[0]
        assert isinstance(decl, ast.DeclStmt) and decl.init.value == 5

    def test_multi_decl_statement(self):
        fn = self.source_fn("int a = 1, b = 2; return a + b;")
        assert isinstance(fn.body.stmts[0], ast.DeclStmt)
        assert isinstance(fn.body.stmts[1], ast.DeclStmt)

    def test_empty_statement(self):
        fn = self.source_fn("; return 0;")
        assert len(fn.body.stmts) == 1

    def test_return_void(self):
        fn = parse("void f() { return; }").functions()[0]
        assert fn.body.stmts[0].value is None


class TestTraversalHelpers:
    def test_walk_expr_counts(self):
        e = parse_expr("a + b * c")
        assert len(list(ast.walk_expr(e))) == 5

    def test_function_exprs(self):
        fn = parse("int f(int x) { if (x) return x + 1; return 0; }") \
            .functions()[0]
        nodes = list(ast.function_exprs(fn))
        assert any(isinstance(n, ast.Binary) for n in nodes)

    def test_walk_stmts(self):
        fn = parse("int f() { while (1) { if (0) break; } return 0; }") \
            .functions()[0]
        kinds = {type(s).__name__ for s in ast.walk_stmts(fn.body)}
        assert {"Block", "While", "If", "Break", "Return"} <= kinds
