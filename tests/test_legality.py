"""Legality analysis tests: each of the paper's §2.2 tests in isolation,
plus the tolerances (allocator casts, &field in call args)."""

from repro.frontend import Program
from repro.analysis import (
    analyze_legality, analyze_escapes, SMAL_THRESHOLD,
)


def legality(src):
    p = Program.from_source(src)
    leg = analyze_legality(p)
    analyze_escapes(p, leg)
    return leg


BASE = """
struct t { long a; long b; };
struct t *g;
int main() {
    g = (struct t*) malloc(16 * sizeof(struct t));
    g[0].a = 1;
    %s
    return 0;
}
"""


class TestIndividualReasons:
    def test_clean_type_is_legal(self):
        leg = legality(BASE % "")
        assert leg.info("t").is_legal()
        assert leg.info("t").invalid_reasons == set()

    def test_cstt_cast_to(self):
        leg = legality(BASE %
                       "long buf[8]; struct t *p = (struct t*) buf;"
                       "p->a = 2;")
        assert leg.info("t").invalid_reasons == {"CSTT"}

    def test_cstf_cast_from(self):
        leg = legality(BASE % "long *raw = (long*) g; raw[0] = 1;")
        assert leg.info("t").invalid_reasons == {"CSTF"}

    def test_atkn_address_of_field(self):
        leg = legality(BASE % "long *p = &g[1].b; p[0] = 3;")
        assert leg.info("t").invalid_reasons == {"ATKN"}
        assert leg.info("t").address_taken_fields == {"b"}

    def test_atkn_tolerated_in_call_argument(self):
        src = """
        struct t { long a; long b; };
        struct t *g;
        void sink(long *p) { p[0] = 1; }
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            sink(&g[0].b);
            return 0;
        }
        """
        leg = legality(src)
        assert leg.info("t").is_legal()

    def test_libc_escape(self):
        leg = legality(BASE % "fwrite(g, sizeof(struct t), 16, NULL);")
        assert "LIBC" in leg.info("t").invalid_reasons

    def test_ind_escape_to_indirect_call(self):
        src = """
        struct t { long a; };
        struct t *g;
        void handler(struct t *p) { p->a = 1; }
        void (*fp)(struct t*);
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            fp = handler;
            fp(g);
            return 0;
        }
        """
        leg = legality(src)
        assert "IND" in leg.info("t").invalid_reasons

    def test_mset_memset(self):
        leg = legality(BASE % "memset(g, 0, 16 * sizeof(struct t));")
        assert "MSET" in leg.info("t").invalid_reasons

    def test_mset_memcpy(self):
        leg = legality(
            BASE % "struct t *h = (struct t*) malloc(16 * "
                   "sizeof(struct t)); "
                   "memcpy(h, g, 16 * sizeof(struct t)); h[0].a = 1;")
        assert "MSET" in leg.info("t").invalid_reasons

    def test_smal_single_object(self):
        leg = legality("""
        struct t { long a; };
        struct t *g;
        int main() {
            g = (struct t*) malloc(sizeof(struct t));
            g->a = 1;
            return 0;
        }
        """)
        assert "SMAL" in leg.info("t").invalid_reasons
        assert SMAL_THRESHOLD == 2

    def test_smal_not_applied_to_large_constant(self):
        leg = legality(BASE % "")
        assert "SMAL" not in leg.info("t").invalid_reasons

    def test_smal_unknown_count_tolerated(self):
        leg = legality("""
        struct t { long a; };
        struct t *g;
        int main(){
            long n = 20;
            g = (struct t*) malloc(n * sizeof(struct t));
            g[3].a = 1;
            return 0;
        }
        """)
        assert "SMAL" not in leg.info("t").invalid_reasons

    def test_nest_both_types_marked(self):
        leg = legality("""
        struct in_ { long x; };
        struct out_ { struct in_ nested; long y; };
        int main() { struct out_ v; v.y = 1; v.nested.x = 2;
                     return (int) v.y; }
        """)
        assert "NEST" in leg.info("in_").invalid_reasons
        assert "NEST" in leg.info("out_").invalid_reasons

    def test_escp_outside_scope(self):
        src = """
        struct t { long a; };
        struct t *g;
        void external_sink(struct t *p);
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            external_sink(g);
            return 0;
        }
        """
        leg = legality(src)
        assert "ESCP" in leg.info("t").invalid_reasons

    def test_escape_to_defined_function_ok(self):
        src = """
        struct t { long a; };
        struct t *g;
        void local_sink(struct t *p) { p->a = 1; }
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            local_sink(g);
            return 0;
        }
        """
        leg = legality(src)
        assert leg.info("t").is_legal()
        assert "local_sink" in leg.info("t").escapes_to

    def test_alloc_cast_is_tolerated(self):
        leg = legality(BASE % "")
        assert "CSTT" not in leg.info("t").invalid_reasons

    def test_null_cast_tolerated(self):
        leg = legality(BASE % "struct t *p = (struct t*) NULL; "
                              "if (p == NULL) g[1].a = 1;")
        assert leg.info("t").is_legal()


class TestRelaxation:
    def test_relax_tolerates_the_trio(self):
        src = """
        struct c1 { long a; };
        struct c2 { long a; };
        struct c3 { long a; };
        struct c1 *g1;
        struct c2 *g2;
        struct c3 *g3;
        int main() {
            g1 = (struct c1*) malloc(8 * sizeof(struct c1));
            g2 = (struct c2*) malloc(8 * sizeof(struct c2));
            g3 = (struct c3*) malloc(8 * sizeof(struct c3));
            long buf[4];
            struct c1 *p = (struct c1*) buf;   // CSTT
            p->a = 1;
            long *raw = (long*) g2;            // CSTF
            raw[0] = 2;
            long *pf = &g3[0].a;               // ATKN
            pf[0] = 3;
            return 0;
        }
        """
        leg = legality(src)
        assert len(leg.legal_types()) == 0
        assert len(leg.legal_types(relaxed=True)) == 3

    def test_relax_does_not_tolerate_hard_reasons(self):
        leg = legality(BASE % "fwrite(g, sizeof(struct t), 16, NULL);")
        assert not leg.info("t").is_legal(relaxed=True)

    def test_counts(self):
        leg = legality(BASE % "long *raw = (long*) g; raw[0] = 1;")
        assert leg.counts() == (1, 0, 1)


class TestAttributes:
    def test_alloc_site_recorded(self):
        leg = legality(BASE % "")
        info = leg.info("t")
        assert info.allocated
        assert info.alloc_sites[0].count == 16
        assert info.alloc_sites[0].kind == "malloc"

    def test_calloc_count(self):
        leg = legality("""
        struct t { long a; };
        struct t *g;
        int main() {
            g = (struct t*) calloc(32, sizeof(struct t));
            g[0].a = 1; return 0;
        }
        """)
        assert leg.info("t").alloc_sites[0].count == 32

    def test_sizeof_first_operand(self):
        leg = legality("""
        struct t { long a; };
        struct t *g;
        int main() {
            g = (struct t*) malloc(sizeof(struct t) * 12);
            g[0].a = 1; return 0;
        }
        """)
        assert leg.info("t").alloc_sites[0].count == 12

    def test_freed_flag(self):
        leg = legality(BASE % "free(g);")
        assert leg.info("t").freed

    def test_realloc_flag(self):
        leg = legality(
            BASE % "g = (struct t*) realloc(g, 32 * sizeof(struct t));")
        assert leg.info("t").realloced

    def test_global_pointer_attribute(self):
        leg = legality(BASE % "")
        info = leg.info("t")
        assert info.has_global_ptr
        assert [s.name for s in info.global_ptr_symbols] == ["g"]
        assert "GPTR" in info.attributes()

    def test_local_var_attribute(self):
        leg = legality("""
        struct t { long a; };
        int main() { struct t v; v.a = 1; return (int) v.a; }
        """)
        assert leg.info("t").has_local_var

    def test_static_array_attribute(self):
        leg = legality("""
        struct t { long a; };
        struct t table[4];
        int main() { table[0].a = 1; return 0; }
        """)
        assert leg.info("t").has_static_array
