"""Structure splitting tests: semantics preservation, layout shape,
dead-store removal, allocation/free rewriting, error paths."""

import pytest

from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import (
    SplitSpec, split_structure, remove_dead_fields, TransformError,
    LINK_FIELD,
)

SRC = """
struct rec {
    long hot1;
    long hot2;
    long cold1;
    long cold2;
    double dead1;
};
struct rec *R;
int main() {
    int i; long sum = 0;
    R = (struct rec*) malloc(50 * sizeof(struct rec));
    for (i = 0; i < 50; i++) {
        R[i].hot1 = i;
        R[i].hot2 = 2 * i;
        R[i].cold1 = 3 * i;
        R[i].cold2 = -i;
        R[i].dead1 = 0.5 * i;
    }
    for (i = 0; i < 50; i++)
        sum += R[i].hot1 + R[i].hot2 + R[i].cold1 - R[i].cold2;
    free(R);
    printf("%ld", sum);
    return 0;
}
"""


def split(src=SRC, cold=("cold1", "cold2"), dead=("dead1",), **kw):
    p = Program.from_source(src)
    spec = SplitSpec(record=p.record("rec"), cold_fields=list(cold),
                     dead_fields=list(dead), **kw)
    return p, split_structure(p, spec)


class TestSemantics:
    def test_output_preserved(self):
        p, p2 = split()
        assert run_program(p).stdout == run_program(p2).stdout

    def test_output_preserved_without_dead(self):
        p, p2 = split(dead=())
        assert run_program(p).stdout == run_program(p2).stdout

    def test_pointer_walk_still_works(self):
        src = """
        struct rec { long hot; long cold; };
        struct rec *R;
        int main() {
            int i; long s = 0;
            R = (struct rec*) malloc(10 * sizeof(struct rec));
            for (i = 0; i < 10; i++) { R[i].hot = i; R[i].cold = -i; }
            struct rec *p = R;
            for (i = 0; i < 10; i++) { s += p->hot - p->cold; p++; }
            printf("%ld", s);
            return 0;
        }
        """
        p = Program.from_source(src)
        spec = SplitSpec(record=p.record("rec"),
                         cold_fields=["cold"], dead_fields=[],
                         hot_order=None)
        # only one cold field: the transformation itself still works
        p2 = split_structure(p, spec)
        assert run_program(p).stdout == run_program(p2).stdout

    def test_recursive_type_split(self):
        src = """
        struct rec { long v; struct rec *next; long cold; };
        struct rec *R;
        int main() {
            int i; long s = 0;
            R = (struct rec*) malloc(8 * sizeof(struct rec));
            for (i = 0; i < 8; i++) {
                R[i].v = i;
                R[i].cold = 100 + i;
                R[i].next = i + 1 < 8 ? &R[i + 1] : NULL;
            }
            struct rec *p = &R[0];
            while (p != NULL) { s += p->v + p->cold; p = p->next; }
            printf("%ld", s);
            return 0;
        }
        """
        p = Program.from_source(src)
        spec = SplitSpec(record=p.record("rec"), cold_fields=["cold"],
                         dead_fields=[])
        p2 = split_structure(p, spec)
        assert run_program(p).stdout == run_program(p2).stdout


class TestLayout:
    def test_hot_struct_shrinks(self):
        p, p2 = split()
        old = p.record("rec")
        new = p2.record("rec")
        assert new.size < old.size
        assert new.has_field(LINK_FIELD)

    def test_cold_struct_created(self):
        _, p2 = split()
        cold = p2.record("rec__cold")
        assert cold.field_names() == ["cold1", "cold2"]

    def test_dead_field_gone_everywhere(self):
        _, p2 = split()
        assert not p2.record("rec").has_field("dead1")
        assert not p2.record("rec__cold").has_field("dead1")

    def test_hot_order_respected(self):
        p = Program.from_source(SRC)
        spec = SplitSpec(record=p.record("rec"),
                         cold_fields=["cold1", "cold2"],
                         dead_fields=["dead1"],
                         hot_order=["hot2", "hot1"])
        p2 = split_structure(p, spec)
        assert p2.record("rec").field_names() == \
            ["hot2", "hot1", LINK_FIELD]

    def test_helper_functions_generated(self):
        _, p2 = split()
        assert p2.has_function("__split_alloc_rec")
        assert p2.has_function("__split_free_rec")

    def test_empty_cold_no_link_pointer(self):
        p = Program.from_source(SRC)
        p2 = remove_dead_fields(p, p.record("rec"), ["dead1"])
        assert not p2.record("rec").has_field(LINK_FIELD)
        assert not p2.has_function("__split_alloc_rec")
        assert run_program(p).stdout == run_program(p2).stdout


class TestDeadStoreRemoval:
    def test_simple_dead_store_removed(self):
        _, p2 = split()
        from repro.transform import program_sources
        text = program_sources(p2)[0][1]
        assert "dead1" not in text

    def test_dead_store_with_side_effects_keeps_rhs(self):
        src = """
        struct rec { long live; long dead; };
        struct rec *R;
        long calls;
        long bump(void) { calls++; return 1; }
        int main() {
            R = (struct rec*) malloc(4 * sizeof(struct rec));
            R[0].dead = bump();       // store dies, call must survive
            R[0].live = 5;
            printf("%ld %ld", R[0].live, calls);
            return 0;
        }
        """
        p = Program.from_source(src)
        p2 = remove_dead_fields(p, p.record("rec"), ["dead"])
        assert run_program(p2).stdout == "5 1"

    def test_reading_claimed_dead_field_raises(self):
        p = Program.from_source(SRC)
        spec = SplitSpec(record=p.record("rec"), cold_fields=[],
                         dead_fields=["hot1"])    # hot1 is read!
        with pytest.raises(TransformError):
            split_structure(p, spec)


class TestSpecValidation:
    def test_unknown_field_rejected(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            SplitSpec(record=p.record("rec"), cold_fields=["nope"])

    def test_overlapping_cold_dead_rejected(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            SplitSpec(record=p.record("rec"), cold_fields=["cold1"],
                      dead_fields=["cold1"])

    def test_bad_hot_order_rejected(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            SplitSpec(record=p.record("rec"), cold_fields=["cold1"],
                      hot_order=["hot1"]).hot_fields

    def test_realloc_rejected(self):
        src = """
        struct rec { long a; long b; long c; };
        struct rec *R;
        int main() {
            R = (struct rec*) malloc(4 * sizeof(struct rec));
            R = (struct rec*) realloc(R, 8 * sizeof(struct rec));
            R[0].a = 1;
            return 0;
        }
        """
        p = Program.from_source(src)
        spec = SplitSpec(record=p.record("rec"),
                         cold_fields=["b", "c"], dead_fields=[])
        with pytest.raises(TransformError):
            split_structure(p, spec)

    def test_unanalyzable_alloc_rejected(self):
        src = """
        struct rec { long a; long b; long c; };
        struct rec *R;
        int main() {
            R = (struct rec*) malloc(4096);
            R[0].a = 1;
            return 0;
        }
        """
        p = Program.from_source(src)
        spec = SplitSpec(record=p.record("rec"),
                         cold_fields=["b", "c"], dead_fields=[])
        with pytest.raises(TransformError):
            split_structure(p, spec)


class TestPerformanceDirection:
    def test_hot_loop_gets_faster_on_large_array(self):
        src = SRC.replace("50", "2000").replace(
            "sum += R[i].hot1 + R[i].hot2 + R[i].cold1 - R[i].cold2;",
            "sum += R[i].hot1 + R[i].hot2;")
        # many iterations over the hot fields only
        src = src.replace(
            "for (i = 0; i < 2000; i++)\n        sum",
            "int it; for (it = 0; it < 20; it++) "
            "for (i = 0; i < 2000; i++)\n        sum")
        p = Program.from_source(src)
        spec = SplitSpec(record=p.record("rec"),
                         cold_fields=["cold1", "cold2"],
                         dead_fields=["dead1"])
        p2 = split_structure(p, spec)
        r1 = run_program(p)
        r2 = run_program(p2)
        assert r1.stdout == r2.stdout
        assert r2.cycles < r1.cycles
