"""Observability layer tests: span tracer, metrics registry, the pass
observer registry that replaced ``PASS_OBSERVER``, pipeline span
nesting under the parallel front end, metrics accuracy against a
scripted compile, Chrome/JSONL export, the ``repro.api`` facade, and
trace-id propagation through a live daemon with a killed-and-retried
worker."""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.api import (
    ApiError, CompileOptions, CompileReply, CompileRequest, Session,
)
from repro.core import Compiler, CompilerOptions
from repro.core.pipeline import (
    PASS_EVENTS, compile_program, compile_source,
)
from repro.obs import (
    CAT_PASS, CAT_PHASE, CAT_SERVICE, MetricsRegistry, NULL_SPAN,
    NULL_TRACER, PassEvent, PassEventRecorder, PassProfiler, Tracer,
    chrome_trace, jsonl_lines, render_key, validate_chrome_trace,
    write_trace,
)
from repro.service import (
    CompileServer, ProtocolError, Request, Supervisor,
    SupervisorConfig, single_request, wait_ready,
)

DEMO = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""

UNIT_TMPL = """
struct rec%(i)d { int a; int b; long c; };
int touch%(i)d(int n) {
  struct rec%(i)d *p = (struct rec%(i)d*)malloc(sizeof(struct rec%(i)d));
  int i; int acc = 0;
  for (i = 0; i < n; i = i + 1) { p->a = i; acc = acc + p->a; }
  free(p);
  return acc;
}
"""


def multi_unit(n: int = 4) -> list[tuple[str, str]]:
    units = [(f"u{i}.c", UNIT_TMPL % {"i": i}) for i in range(1, n)]
    main = 'int main() { printf("%d\\n", touch0(3)); return 0; }\n'
    return [("u0.c", UNIT_TMPL % {"i": 0} + main)] + units


# ---------------------------------------------------------------------------
# Tracer primitives
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_parentage(self):
        tr = Tracer()
        with tr.span("a") as a:
            with tr.span("b") as b:
                with tr.span("c") as c:
                    pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id
        assert [s.name for s in tr.finished()] == ["c", "b", "a"]
        assert len({s.trace_id for s in tr.finished()}) == 1

    def test_explicit_clock(self):
        now = [10.0]
        tr = Tracer(clock=lambda: now[0])
        s = tr.start("x")
        now[0] = 12.5
        tr.finish(s)
        assert s.duration == pytest.approx(2.5)

    def test_exception_marks_error_status(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("no")
        (span,) = tr.finished()
        assert span.status == "error"
        assert "ValueError" in span.attrs["error"]

    def test_disabled_tracer_is_null(self):
        tr = Tracer(enabled=False)
        with tr.span("a") as s:
            s.set(k=1)
            s.add_event("e", 0.0)
        assert s is NULL_SPAN
        assert tr.finished() == []
        assert NULL_TRACER.finished() == []

    def test_span_dict_round_trip(self):
        tr = Tracer()
        with tr.span("a", category=CAT_PHASE) as s:
            s.set(answer=42)
            tr.event("tick", detail="x")
        d = tr.finished()[-1].to_dict()
        from repro.obs import Span
        back = Span.from_dict(d)
        assert back.name == "a" and back.attrs["answer"] == 42
        assert back.events and back.events[0][1] == "tick"

    def test_adopt_reparents_and_prefixes(self):
        worker = Tracer(trace_id="t1", id_prefix="w9.")
        with worker.span("job"):
            with worker.span("inner"):
                pass
        sup = Tracer(trace_id="t1", id_prefix="s.")
        with sup.span("attempt") as att:
            sup.adopt([s.to_dict() for s in worker.finished()],
                      parent_id=att.span_id)
        spans = {s.name: s for s in sup.finished()}
        assert spans["job"].parent_id == att.span_id
        assert spans["inner"].parent_id == spans["job"].span_id
        assert {s.trace_id for s in sup.finished()} == {"t1"}
        assert len({s.span_id for s in sup.finished()}) == 3

    def test_add_finished_retro_span(self):
        tr = Tracer()
        with tr.span("fe") as fe:
            tr.add_finished("parse[u0.c]", 1.0, 2.0,
                            parent_id=fe.span_id, tid=7)
        retro = tr.by_name("parse[u0.c]")[0]
        assert retro.parent_id == fe.span_id
        assert retro.duration == pytest.approx(1.0)
        assert retro.tid == 7


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("hits").inc()
        m.counter("hits").inc(2)
        m.gauge("depth").set(3)
        h = m.histogram("wall_ms")
        for v in (1.0, 3.0, 5.0):
            h.observe(v)
        snap = m.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 3
        assert snap["wall_ms"]["count"] == 3
        assert snap["wall_ms"]["min"] == 1.0
        assert snap["wall_ms"]["max"] == 5.0
        assert snap["wall_ms"]["mean"] == pytest.approx(3.0)

    def test_labels_are_distinct_series(self):
        m = MetricsRegistry()
        m.counter("served", op="advise").inc()
        m.counter("served", op="compare").inc(4)
        snap = m.snapshot()
        assert snap[render_key("served", {"op": "advise"})] == 1
        assert snap[render_key("served", {"op": "compare"})] == 4

    def test_type_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")

    def test_threaded_counter_accuracy(self):
        m = MetricsRegistry()
        c = m.counter("n")
        threads = [threading.Thread(
            target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.snapshot() == 4000


# ---------------------------------------------------------------------------
# The observer registry (PASS_OBSERVER replacement)
# ---------------------------------------------------------------------------

class TestObserverRegistry:
    def test_subscribed_context_restores(self):
        rec = PassEventRecorder()
        before = len(PASS_EVENTS)
        with PASS_EVENTS.subscribed(rec):
            assert len(PASS_EVENTS) == before + 1
            PASS_EVENTS.publish(PassEvent("p", "enter"))
        assert len(PASS_EVENTS) == before
        assert rec.names("enter") == ["p"]

    def test_exceptions_swallowed_base_exceptions_escape(self):
        def bad(ev):
            raise RuntimeError("ordinary")

        def fatal(ev):
            raise KeyboardInterrupt

        with PASS_EVENTS.subscribed(bad):
            PASS_EVENTS.publish(PassEvent("p", "enter"))  # no raise
        with PASS_EVENTS.subscribed(fatal):
            with pytest.raises(KeyboardInterrupt):
                PASS_EVENTS.publish(PassEvent("p", "enter"))

    def test_compile_leaves_no_subscribers(self):
        before = len(PASS_EVENTS)
        tracer = Tracer()
        Compiler(CompilerOptions(), tracer=tracer) \
            .compile_sources([("demo.c", DEMO)])
        assert len(PASS_EVENTS) == before

    def test_base_name(self):
        assert PassEvent("legality[a.c]", "exit").base_name == "legality"
        assert PassEvent("weights", "exit").base_name == "weights"


# ---------------------------------------------------------------------------
# Pipeline tracing: nesting, parallel FE, metrics accuracy, profiling
# ---------------------------------------------------------------------------

class TestPipelineTracing:
    def test_span_tree_shape(self):
        tracer = Tracer()
        result = Compiler(CompilerOptions(), tracer=tracer) \
            .compile_sources([("demo.c", DEMO)])
        assert not result.diagnostics.has_errors
        spans = {s.name: s for s in tracer.finished()}
        root = spans["compile"]
        assert root.parent_id is None
        for phase in ("fe", "ipa", "be"):
            assert spans[phase].parent_id == root.span_id, phase
        assert spans["fe.parse"].parent_id == spans["fe"].span_id
        # guarded passes hang off the phase that ran them: the FE
        # analyses (legality, deadfields) under fe, the whole-program
        # passes under ipa, the transform under be
        assert spans["legality"].parent_id == spans["fe"].span_id
        assert spans["weights"].parent_id == spans["ipa"].span_id
        assert spans["apply"].parent_id == spans["be"].span_id
        assert result.trace_id == tracer.trace_id

    def test_parallel_fe_unit_spans(self):
        sources = multi_unit(4)
        tracer = Tracer()
        result = Compiler(CompilerOptions(jobs=4), tracer=tracer) \
            .compile_sources(sources)
        assert not result.diagnostics.has_errors
        parse = tracer.by_name("fe.parse")[0]
        assert parse.attrs["jobs"] == 4
        unit_spans = [s for s in tracer.finished()
                      if s.name.startswith("parse[")]
        assert {s.name for s in unit_spans} == \
            {f"parse[u{i}.c]" for i in range(4)}
        for s in unit_spans:
            assert s.parent_id == parse.span_id
            assert s.trace_id == tracer.trace_id
            # retro spans land on synthetic lanes, one per unit
            assert s.tid >= 1_000_000

    def test_metrics_accuracy_cache_and_passes(self):
        sources = multi_unit(3)
        with tempfile.TemporaryDirectory() as cache:
            m1 = MetricsRegistry()
            r1 = Compiler(CompilerOptions(cache_dir=cache),
                          metrics=m1).compile_sources(sources)
            assert not r1.diagnostics.has_errors
            m2 = MetricsRegistry()
            r2 = Compiler(CompilerOptions(cache_dir=cache),
                          metrics=m2).compile_sources(sources)
            assert not r2.diagnostics.has_errors
        s1, s2 = m1.snapshot(), m2.snapshot()
        # cold run: every artifact lookup (per-TU parses, per-TU
        # summaries, the whole-FE entry) misses; warm run: the
        # whole-FE entry hits and nothing is recomputed
        assert s1.get("fe.cache.hit", 0) == 0
        assert s1["fe.cache.miss"] >= len(sources)
        assert s2["fe.cache.hit"] >= 1
        assert s2.get("fe.cache.miss", 0) == 0
        # one pass.wall_ms observation per guarded pass execution
        ran = sum(v["count"] for k, v in s1.items()
                  if k.startswith("pass.wall_ms"))
        assert ran == len(r1.pass_timings)
        assert not any(k.startswith("pass.fail") for k in s1)

    def test_pass_profile_populated_when_traced(self):
        tracer = Tracer()
        result = Compiler(CompilerOptions(), tracer=tracer) \
            .compile_sources([("demo.c", DEMO)])
        assert result.pass_profile
        for name, prof in result.pass_profile.items():
            assert prof["wall_ms"] >= 0.0
            assert prof["rss_kb_delta"] >= 0
            assert prof["failed"] is False

    def test_disabled_is_inert(self):
        before = len(PASS_EVENTS)
        result = Compiler(CompilerOptions()) \
            .compile_sources([("demo.c", DEMO)])
        assert result.trace_id is None
        assert result.pass_profile == {}
        assert len(PASS_EVENTS) == before
        # an explicitly disabled tracer behaves like none at all
        result = Compiler(CompilerOptions(),
                          tracer=Tracer(enabled=False)) \
            .compile_sources([("demo.c", DEMO)])
        assert result.trace_id is None
        assert result.pass_profile == {}


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

class TestExport:
    def _spans(self):
        tr = Tracer()
        with tr.span("outer", category=CAT_PHASE):
            tr.event("marker")
            with tr.span("inner", category=CAT_PASS):
                pass
        return tr.finished()

    def test_chrome_trace_valid(self):
        obj = chrome_trace(self._spans())
        assert validate_chrome_trace(obj) == []
        kinds = {e["ph"] for e in obj["traceEvents"]}
        assert kinds == {"X", "i"}

    def test_validator_catches_corruption(self):
        obj = chrome_trace(self._spans())
        obj["traceEvents"][0].pop("ts")
        obj["traceEvents"].append({"ph": "X", "name": 3})
        assert validate_chrome_trace(obj)

    def test_jsonl_round_trip(self):
        lines = jsonl_lines(self._spans())
        parsed = [json.loads(ln) for ln in lines]
        assert {p["name"] for p in parsed} == {"outer", "inner"}

    def test_write_trace_picks_format(self, tmp_path):
        spans = self._spans()
        chrome = write_trace(tmp_path / "t.json", spans)
        assert validate_chrome_trace(
            json.loads(Path(chrome).read_text())) == []
        jsonl = write_trace(tmp_path / "t.jsonl", spans)
        lines = Path(jsonl).read_text().splitlines()
        assert len(lines) == 2 and json.loads(lines[0])["name"]


# ---------------------------------------------------------------------------
# The repro.api facade
# ---------------------------------------------------------------------------

class TestApiFacade:
    def test_session_matches_deprecated_entry_points(self):
        fresh = Session().compile_source(DEMO)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = compile_source(DEMO)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert fresh.table1_row() == legacy.table1_row()
        assert [d.type_name for d in fresh.transformed_types()] == \
            [d.type_name for d in legacy.transformed_types()]

    def test_compile_program_shim_warns(self):
        from repro.frontend import Program
        program = Program.from_sources([("demo.c", DEMO)], recover=True)
        with pytest.deprecated_call():
            compile_program(program)

    def test_options_reject_unknown_field(self):
        with pytest.raises(ApiError) as exc:
            CompileOptions.from_dict({"scheme": "ISPBO", "spede": 9})
        assert "spede" in str(exc.value)
        assert exc.value.detail["unknown_fields"] == ["spede"]

    def test_request_round_trip(self):
        req = CompileRequest(
            op="analyze", sources=[("a.c", DEMO)],
            options=CompileOptions(relax=True, jobs=2),
            deadline=5.0, trace=True)
        back = CompileRequest.from_dict(req.to_wire())
        assert back.op == "analyze"
        assert back.options.relax is True
        assert back.options.jobs == 2
        assert back.deadline == 5.0
        assert back.trace is True

    def test_request_rejects_unknown_op_and_fields(self):
        with pytest.raises(ApiError):
            CompileRequest(op="frobnicate")
        with pytest.raises(ApiError) as exc:
            CompileRequest.from_dict(
                {"op": "advise", "sources": [["a.c", "int x;"]],
                 "tracing": True})
        assert exc.value.detail["unknown_fields"] == ["tracing"]

    def test_wire_request_unknown_field_structured_error(self):
        with pytest.raises(ProtocolError) as exc:
            Request.from_dict(
                {"op": "advise", "sources": [["a.c", "int x;"]],
                 "optionz": {}})
        assert exc.value.detail["unknown_fields"] == ["optionz"]

    def test_session_execute_reply(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        reply = session.execute(CompileRequest(
            op="analyze", sources=[("demo.c", DEMO)], id=7))
        assert isinstance(reply, CompileReply)
        assert reply.ok and reply.id == 7 and reply.tier == "advisory"
        assert reply.payload["table1"] == [1, 1, 1]
        assert reply.trace_id == tracer.trace_id
        assert any(s["name"] == "compile" for s in reply.spans)


# ---------------------------------------------------------------------------
# Distributed tracing through a live daemon
# ---------------------------------------------------------------------------

@contextmanager
def service(**cfg_kw):
    tmp = tempfile.mkdtemp(prefix="repro-obs-")
    cfg_kw.setdefault("pool_size", 1)
    cfg_kw.setdefault("cache_dir", os.path.join(tmp, "cache"))
    supervisor = Supervisor(SupervisorConfig(**cfg_kw))
    sock = os.path.join(tmp, "repro.sock")
    server = CompileServer(sock, supervisor)
    server.start()
    assert wait_ready(sock, timeout=30), "daemon failed to become ready"
    try:
        yield sock, supervisor
    finally:
        server.shutdown()


def traced_request(op: str = "advise", **extra) -> dict:
    return {"id": 1, "op": op, "trace": True,
            "sources": [["demo.c", DEMO]], **extra}


class TestDaemonTracing:
    def test_trace_propagates_and_stitches(self):
        with service() as (sock, _):
            resp = single_request(sock, traced_request(), timeout=120)
            assert resp["status"] == "ok"
            spans = resp["spans"]
            assert spans and resp["trace_id"]
            assert {s["trace_id"] for s in spans} == {resp["trace_id"]}
            by_name = {s["name"]: s for s in spans}
            req_span = by_name["request"]
            att = by_name["attempt"]
            job = by_name["job"]
            assert req_span["parent_id"] is None
            assert att["parent_id"] == req_span["span_id"]
            assert job["parent_id"] == att["span_id"]
            assert by_name["compile"]["parent_id"] == job["span_id"]
            # worker span ids are pid-prefixed; supervisor's are not
            assert job["span_id"].startswith("w")
            assert att["span_id"].startswith("s.")
            assert validate_chrome_trace(chrome_trace(spans)) == []
            # the daemon serves the same trace back afterwards
            stored = single_request(
                sock, {"op": "trace", "trace_id": resp["trace_id"]})
            assert stored["status"] == "ok"
            assert len(stored["spans"]) == len(spans)

    def test_untraced_request_carries_no_spans(self):
        with service() as (sock, _):
            resp = single_request(
                sock, {"id": 1, "op": "advise",
                       "sources": [["demo.c", DEMO]]}, timeout=120)
            assert resp["status"] == "ok"
            assert "spans" not in resp and "trace_id" not in resp

    def test_killed_worker_retry_is_second_attempt_span(self):
        with service(deadline=60.0, max_retries=2) as (sock, _):
            resp = single_request(sock, traced_request(
                op="transform",
                faults=[{"stage": "apply", "mode": "kill",
                         "times": 1}]), timeout=120)
            assert resp["status"] == "ok"
            assert resp["attempts"] == 2
            spans = resp["spans"]
            attempts = sorted(
                (s for s in spans if s["name"] == "attempt"),
                key=lambda s: s["attrs"]["attempt"])
            assert [s["attrs"]["attempt"] for s in attempts] == [1, 2]
            assert attempts[0]["status"] == "error"
            assert attempts[1]["status"] == "ok"
            # both attempts belong to the one request span
            req_span = next(s for s in spans if s["name"] == "request")
            assert {s["parent_id"] for s in attempts} == \
                {req_span["span_id"]}
            # the killed attempt has no surviving worker sub-spans;
            # the retry ran the full pipeline on a fresh worker
            retry_children = {s["name"] for s in spans
                              if s["parent_id"] ==
                              attempts[1]["span_id"]}
            assert "job" in retry_children
            assert validate_chrome_trace(chrome_trace(spans)) == []

    def test_trace_op_unknown_id_is_error(self):
        with service() as (sock, _):
            resp = single_request(
                sock, {"op": "trace", "trace_id": "nope"})
            assert resp["status"] == "error"

    def test_stats_carries_service_metrics(self):
        with service() as (sock, _):
            single_request(sock, traced_request(), timeout=120)
            stats = single_request(sock, {"op": "stats"})["stats"]
            metrics = stats["metrics"]
            assert metrics[render_key("service.requests",
                                      {"op": "advise"})] == 1
            assert render_key("service.request_wall_ms",
                              {"op": "advise"}) in metrics
