"""The content-addressed summary cache and per-unit fault containment.

Cache contract (§2's on-disk IELF summary files): an unchanged
(source, options) pair is a hit; editing one TU misses only that TU's
per-unit artifacts; changing any semantic option misses everything;
and a corrupt entry of any kind is *contained* — discarded with a
diagnostic and recomputed, never an exception, never wrong output.
"""

import pathlib
import pickle

import pytest

from repro.core import (
    CODE_BUDGET, CODE_CACHE, Compiler, CompilerOptions, compile_sources,
    inject_cache_fault, inject_fault,
)
from repro.core.summarycache import (
    ENTRY_MAGIC, QUARANTINE_DIR, QUARANTINE_MAX, SummaryCache,
    frame_blob, fsck_cache, quarantine_entry, unframe_blob,
)
from repro.transform import program_sources

SOURCES = [
    ("u1.c", """
struct item { int key; int weight; int pad; struct item *next; };
struct item *mk(int k) {
  struct item *p = (struct item*)malloc(sizeof(struct item));
  p->key = k; p->next = 0; return p;
}
"""),
    ("u2.c", """
struct item;
struct item *mk(int k);
int total(struct item *p) {
  int s = 0;
  while (p) { s = s + p->key; p = p->next; }
  return s;
}
"""),
    ("u3.c", """
struct item;
struct item *mk(int k);
int total(struct item *p);
int main() { printf("%d\\n", total(mk(5))); return 0; }
"""),
]


def opts(cache_dir, **kw):
    return CompilerOptions(cache_dir=cache_dir, **kw)


def fingerprint(result):
    return ([(d.type_name, d.action) for d in result.decisions],
            program_sources(result.transformed))


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def cache_notes(result):
    return [d for d in result.diagnostics.by_code(CODE_CACHE)]


# ---------------------------------------------------------------------------
# hits and misses
# ---------------------------------------------------------------------------

def test_warm_recompile_hits_whole_fe(cache_dir):
    cold = compile_sources(SOURCES, opts(cache_dir))
    warm = compile_sources(SOURCES, opts(cache_dir))
    assert fingerprint(warm) == fingerprint(cold)
    assert any("restored from summary cache" in d.message
               for d in cache_notes(warm))
    # the warm path never ran the parallel parser at all
    assert warm.fe_report is None and cold.fe_report is not None


def test_edited_unit_misses_only_that_unit(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    edited = [(n, t.replace("s + p->key", "s + p->key + 0", 1)
               if n == "u2.c" else t) for n, t in SOURCES]
    result = compile_sources(edited, opts(cache_dir))
    # whole-FE entry missed, but u1.c and u3.c parses were reused
    assert result.fe_report is not None
    assert result.fe_report.parse_cache_hits == 2


def test_changed_options_miss_everything(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    result = compile_sources(SOURCES, opts(cache_dir, scheme="SPBO"))
    assert result.fe_report is not None
    assert result.fe_report.parse_cache_hits == 0
    summary = [d for d in cache_notes(result)
               if "hit(s)" in d.message]
    assert summary and "0 hit(s)" in summary[0].message


def test_options_fingerprint_ignores_strategy_knobs():
    a = CompilerOptions(jobs=1, cache_dir=None).fingerprint()
    b = CompilerOptions(jobs=8, cache_dir="/tmp/x").fingerprint()
    c = CompilerOptions(scheme="SPBO").fingerprint()
    assert a == b
    assert a != c


# ---------------------------------------------------------------------------
# corruption is contained
# ---------------------------------------------------------------------------

def _damage_entries(cache_dir, mutate):
    paths = sorted(pathlib.Path(cache_dir).rglob("*.pkl"))
    assert paths, "expected cached entries"
    for p in paths:
        mutate(p)
    return len(paths)


@pytest.mark.parametrize("mutate", [
    lambda p: p.write_bytes(p.read_bytes()[:5]),          # truncated
    lambda p: p.write_bytes(b"\x00garbage\xff" * 8),      # not a pickle
    lambda p: p.write_bytes(b""),                         # empty file
    lambda p: p.write_bytes(pickle.dumps([1, 2, 3])),     # wrong type
], ids=["truncated", "garbage", "empty", "wrong-type"])
def test_corrupt_entries_recompute_with_diagnostic(cache_dir, mutate):
    cold = compile_sources(SOURCES, opts(cache_dir))
    _damage_entries(cache_dir, mutate)
    result = compile_sources(SOURCES, opts(cache_dir))
    assert fingerprint(result) == fingerprint(cold)
    assert not result.diagnostics.has_errors
    # recompute must also have repaired the cache: next compile is warm
    warm = compile_sources(SOURCES, opts(cache_dir))
    assert any("restored from summary cache" in d.message
               for d in cache_notes(warm))
    assert fingerprint(warm) == fingerprint(cold)


def test_corrupt_entry_emits_cache_warning(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    _damage_entries(cache_dir, lambda p: p.write_bytes(b"\x80broken"))
    result = compile_sources(SOURCES, opts(cache_dir))
    warnings = [d for d in result.diagnostics.warnings()
                if d.code == CODE_CACHE]
    assert warnings and "recomputed" in warnings[0].message


def test_unwritable_cache_dir_degrades_to_note(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should be")
    result = compile_sources(SOURCES, opts(blocker))
    assert not result.diagnostics.has_errors
    assert fingerprint(result) == fingerprint(
        compile_sources(SOURCES, CompilerOptions()))


# ---------------------------------------------------------------------------
# interaction with fault injection and budgets
# ---------------------------------------------------------------------------

def test_injected_faults_bypass_the_cache(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))          # populate
    with inject_fault("legality[u1.c]"):
        faulty = compile_sources(SOURCES, opts(cache_dir))
    contained = faulty.diagnostics.contained()
    assert any(d.phase == "legality[u1.c]" for d in contained)
    assert "FAULT" in faulty.legality.types["item"].invalid_reasons
    assert faulty.degraded
    # the clean cache was neither consulted nor poisoned
    clean = compile_sources(SOURCES, opts(cache_dir))
    assert not clean.diagnostics.contained()
    assert "FAULT" not in clean.legality.types["item"].invalid_reasons


def test_per_unit_fault_demotes_only_through_containment():
    with inject_fault("deadfields[u2.c]"):
        result = compile_sources(SOURCES, CompilerOptions())
    assert any(d.phase == "deadfields[u2.c]"
               for d in result.diagnostics.contained())
    # conservative merge: the faulted unit claims every field live
    usage = result.usage.types["item"]
    assert usage.dead_fields() == [] and usage.unused_fields() == []


def test_tiny_phase_budget_surfaces_per_unit_overruns():
    result = compile_sources(
        SOURCES, CompilerOptions(phase_budget=1e-9))
    overruns = result.diagnostics.by_code(CODE_BUDGET)
    assert overruns, "expected budget diagnostics"
    assert not result.diagnostics.has_errors
    assert result.transformed is not None


def test_contained_compiles_are_not_cached(cache_dir):
    with inject_fault("legality[u1.c]"):
        compile_sources(SOURCES, opts(cache_dir))
    # fault armed -> cache bypassed entirely: nothing was written
    assert not list(pathlib.Path(cache_dir).rglob("*.pkl")) \
        or not (pathlib.Path(cache_dir) / "fe").exists()


# ---------------------------------------------------------------------------
# disk faults: a full (or failing) disk is a diagnostic, not a failure
# ---------------------------------------------------------------------------

def test_enospc_on_store_compiles_uncached_with_note(cache_dir):
    baseline = compile_sources(SOURCES, CompilerOptions())
    with inject_cache_fault("enospc", op="store"):
        result = compile_sources(SOURCES, opts(cache_dir))
    # the compile itself is untouched by the full disk
    assert not result.diagnostics.has_errors
    assert fingerprint(result) == fingerprint(baseline)
    # ...but the failed writes are surfaced as a cache diagnostic
    io_notes = [d for d in cache_notes(result)
                if "cache I/O problem" in d.message]
    assert io_notes
    # nothing landed on disk: the next compile is cold, not corrupt
    cold = compile_sources(SOURCES, opts(cache_dir))
    assert cold.fe_report is not None
    assert fingerprint(cold) == fingerprint(baseline)


def test_eio_on_load_is_a_miss_not_a_crash(cache_dir):
    cold = compile_sources(SOURCES, opts(cache_dir))    # populate
    with inject_cache_fault("eio", op="load"):
        result = compile_sources(SOURCES, opts(cache_dir))
    assert not result.diagnostics.has_errors
    assert fingerprint(result) == fingerprint(cold)
    assert any("cache I/O problem" in d.message
               for d in cache_notes(result))
    # the fault was transient: entries are intact, next compile warm
    warm = compile_sources(SOURCES, opts(cache_dir))
    assert any("restored from summary cache" in d.message
               for d in cache_notes(warm))


def test_transient_enospc_disarms_after_n_fires(cache_dir):
    with inject_cache_fault("enospc", op="store", times=1):
        result = compile_sources(SOURCES, opts(cache_dir))
    assert not result.diagnostics.has_errors
    # only the first store failed; later entries were written, so
    # *some* cache state exists for the next compile
    assert list(pathlib.Path(cache_dir).rglob("*.pkl"))


# ---------------------------------------------------------------------------
# checksum framing and quarantine
# ---------------------------------------------------------------------------

def test_entries_on_disk_are_checksum_framed(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    paths = sorted(pathlib.Path(cache_dir).rglob("*.pkl"))
    assert paths
    for p in paths:
        raw = p.read_bytes()
        assert raw.startswith(ENTRY_MAGIC)
        payload, kind = unframe_blob(raw)
        assert kind == "ok" and payload


def test_bitflip_fails_checksum_and_quarantines(cache_dir):
    cold = compile_sources(SOURCES, opts(cache_dir))

    def flip_last_byte(p):
        raw = bytearray(p.read_bytes())
        raw[-1] ^= 0xFF
        p.write_bytes(bytes(raw))

    damaged = _damage_entries(cache_dir, flip_last_byte)
    result = compile_sources(SOURCES, opts(cache_dir))
    assert fingerprint(result) == fingerprint(cold)
    assert any("recomputed" in d.message
               for d in result.diagnostics.warnings()
               if d.code == CODE_CACHE)
    # the damaged entries moved into quarantine for post-mortem
    qdir = pathlib.Path(cache_dir) / QUARANTINE_DIR
    assert qdir.is_dir()
    assert len(list(qdir.glob("*.pkl"))) == min(damaged,
                                                QUARANTINE_MAX)


def test_legacy_unframed_entries_still_load(tmp_path):
    cache = SummaryCache(tmp_path / "cache")
    key = SummaryCache.key_for("parse", "legacy")
    path = cache._path("parse", key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"old": True}))   # no frame
    assert cache.load("parse", key) == {"old": True}


def test_quarantine_is_bounded(tmp_path):
    root = tmp_path / "cache"
    cache = SummaryCache(root)
    for i in range(QUARANTINE_MAX + 8):
        key = SummaryCache.key_for("parse", f"bad{i}")
        path = cache._path("parse", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"junk")
        quarantine_entry(root, path, "parse", key)
    kept = list((root / QUARANTINE_DIR).glob("*.pkl"))
    assert len(kept) == QUARANTINE_MAX


# ---------------------------------------------------------------------------
# fsck: the `repro cache fsck` engine
# ---------------------------------------------------------------------------

def test_fsck_clean_cache_reports_no_corruption(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    report = fsck_cache(cache_dir)
    assert report.scanned > 0
    assert report.corrupt == 0
    assert report.quarantined == []
    assert report.total_bytes > 0
    for cat in report.categories.values():
        assert cat.entries > 0 and cat.corrupt == 0
        assert cat.oldest_s is not None


def test_fsck_quarantines_corrupt_entries(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    victim = sorted(pathlib.Path(cache_dir).rglob("*.pkl"))[0]
    victim.write_bytes(frame_blob(b"payload")[:-2])     # bad digest
    report = fsck_cache(cache_dir)
    assert report.corrupt == 1
    assert len(report.quarantined) == 1
    assert not victim.exists()
    # the scan healed the cache: a re-scan is clean
    again = fsck_cache(cache_dir)
    assert again.corrupt == 0


def test_fsck_report_only_mode_leaves_entries_in_place(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    victim = sorted(pathlib.Path(cache_dir).rglob("*.pkl"))[0]
    victim.write_bytes(b"")
    report = fsck_cache(cache_dir, quarantine=False)
    assert report.corrupt == 1
    assert report.quarantined == []
    assert victim.exists()


def test_fsck_missing_root_is_empty_not_an_error(tmp_path):
    report = fsck_cache(tmp_path / "never-created")
    assert report.scanned == 0 and report.corrupt == 0
    assert report.to_dict()["categories"] == {}
