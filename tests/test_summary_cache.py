"""The content-addressed summary cache and per-unit fault containment.

Cache contract (§2's on-disk IELF summary files): an unchanged
(source, options) pair is a hit; editing one TU misses only that TU's
per-unit artifacts; changing any semantic option misses everything;
and a corrupt entry of any kind is *contained* — discarded with a
diagnostic and recomputed, never an exception, never wrong output.
"""

import pathlib
import pickle

import pytest

from repro.core import (
    CODE_BUDGET, CODE_CACHE, Compiler, CompilerOptions, compile_sources,
    inject_fault,
)
from repro.transform import program_sources

SOURCES = [
    ("u1.c", """
struct item { int key; int weight; int pad; struct item *next; };
struct item *mk(int k) {
  struct item *p = (struct item*)malloc(sizeof(struct item));
  p->key = k; p->next = 0; return p;
}
"""),
    ("u2.c", """
struct item;
struct item *mk(int k);
int total(struct item *p) {
  int s = 0;
  while (p) { s = s + p->key; p = p->next; }
  return s;
}
"""),
    ("u3.c", """
struct item;
struct item *mk(int k);
int total(struct item *p);
int main() { printf("%d\\n", total(mk(5))); return 0; }
"""),
]


def opts(cache_dir, **kw):
    return CompilerOptions(cache_dir=cache_dir, **kw)


def fingerprint(result):
    return ([(d.type_name, d.action) for d in result.decisions],
            program_sources(result.transformed))


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def cache_notes(result):
    return [d for d in result.diagnostics.by_code(CODE_CACHE)]


# ---------------------------------------------------------------------------
# hits and misses
# ---------------------------------------------------------------------------

def test_warm_recompile_hits_whole_fe(cache_dir):
    cold = compile_sources(SOURCES, opts(cache_dir))
    warm = compile_sources(SOURCES, opts(cache_dir))
    assert fingerprint(warm) == fingerprint(cold)
    assert any("restored from summary cache" in d.message
               for d in cache_notes(warm))
    # the warm path never ran the parallel parser at all
    assert warm.fe_report is None and cold.fe_report is not None


def test_edited_unit_misses_only_that_unit(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    edited = [(n, t.replace("s + p->key", "s + p->key + 0", 1)
               if n == "u2.c" else t) for n, t in SOURCES]
    result = compile_sources(edited, opts(cache_dir))
    # whole-FE entry missed, but u1.c and u3.c parses were reused
    assert result.fe_report is not None
    assert result.fe_report.parse_cache_hits == 2


def test_changed_options_miss_everything(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    result = compile_sources(SOURCES, opts(cache_dir, scheme="SPBO"))
    assert result.fe_report is not None
    assert result.fe_report.parse_cache_hits == 0
    summary = [d for d in cache_notes(result)
               if "hit(s)" in d.message]
    assert summary and "0 hit(s)" in summary[0].message


def test_options_fingerprint_ignores_strategy_knobs():
    a = CompilerOptions(jobs=1, cache_dir=None).fingerprint()
    b = CompilerOptions(jobs=8, cache_dir="/tmp/x").fingerprint()
    c = CompilerOptions(scheme="SPBO").fingerprint()
    assert a == b
    assert a != c


# ---------------------------------------------------------------------------
# corruption is contained
# ---------------------------------------------------------------------------

def _damage_entries(cache_dir, mutate):
    paths = sorted(pathlib.Path(cache_dir).rglob("*.pkl"))
    assert paths, "expected cached entries"
    for p in paths:
        mutate(p)
    return len(paths)


@pytest.mark.parametrize("mutate", [
    lambda p: p.write_bytes(p.read_bytes()[:5]),          # truncated
    lambda p: p.write_bytes(b"\x00garbage\xff" * 8),      # not a pickle
    lambda p: p.write_bytes(b""),                         # empty file
    lambda p: p.write_bytes(pickle.dumps([1, 2, 3])),     # wrong type
], ids=["truncated", "garbage", "empty", "wrong-type"])
def test_corrupt_entries_recompute_with_diagnostic(cache_dir, mutate):
    cold = compile_sources(SOURCES, opts(cache_dir))
    _damage_entries(cache_dir, mutate)
    result = compile_sources(SOURCES, opts(cache_dir))
    assert fingerprint(result) == fingerprint(cold)
    assert not result.diagnostics.has_errors
    # recompute must also have repaired the cache: next compile is warm
    warm = compile_sources(SOURCES, opts(cache_dir))
    assert any("restored from summary cache" in d.message
               for d in cache_notes(warm))
    assert fingerprint(warm) == fingerprint(cold)


def test_corrupt_entry_emits_cache_warning(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))
    _damage_entries(cache_dir, lambda p: p.write_bytes(b"\x80broken"))
    result = compile_sources(SOURCES, opts(cache_dir))
    warnings = [d for d in result.diagnostics.warnings()
                if d.code == CODE_CACHE]
    assert warnings and "recomputed" in warnings[0].message


def test_unwritable_cache_dir_degrades_to_note(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should be")
    result = compile_sources(SOURCES, opts(blocker))
    assert not result.diagnostics.has_errors
    assert fingerprint(result) == fingerprint(
        compile_sources(SOURCES, CompilerOptions()))


# ---------------------------------------------------------------------------
# interaction with fault injection and budgets
# ---------------------------------------------------------------------------

def test_injected_faults_bypass_the_cache(cache_dir):
    compile_sources(SOURCES, opts(cache_dir))          # populate
    with inject_fault("legality[u1.c]"):
        faulty = compile_sources(SOURCES, opts(cache_dir))
    contained = faulty.diagnostics.contained()
    assert any(d.phase == "legality[u1.c]" for d in contained)
    assert "FAULT" in faulty.legality.types["item"].invalid_reasons
    assert faulty.degraded
    # the clean cache was neither consulted nor poisoned
    clean = compile_sources(SOURCES, opts(cache_dir))
    assert not clean.diagnostics.contained()
    assert "FAULT" not in clean.legality.types["item"].invalid_reasons


def test_per_unit_fault_demotes_only_through_containment():
    with inject_fault("deadfields[u2.c]"):
        result = compile_sources(SOURCES, CompilerOptions())
    assert any(d.phase == "deadfields[u2.c]"
               for d in result.diagnostics.contained())
    # conservative merge: the faulted unit claims every field live
    usage = result.usage.types["item"]
    assert usage.dead_fields() == [] and usage.unused_fields() == []


def test_tiny_phase_budget_surfaces_per_unit_overruns():
    result = compile_sources(
        SOURCES, CompilerOptions(phase_budget=1e-9))
    overruns = result.diagnostics.by_code(CODE_BUDGET)
    assert overruns, "expected budget diagnostics"
    assert not result.diagnostics.has_errors
    assert result.transformed is not None


def test_contained_compiles_are_not_cached(cache_dir):
    with inject_fault("legality[u1.c]"):
        compile_sources(SOURCES, opts(cache_dir))
    # fault armed -> cache bypassed entirely: nothing was written
    assert not list(pathlib.Path(cache_dir).rglob("*.pkl")) \
        or not (pathlib.Path(cache_dir) / "fe").exists()
