"""Cache hierarchy simulator tests."""

from hypothesis import given, strategies as st

from repro.runtime.cache import (
    CacheConfig, CacheLevelConfig, CacheHierarchy, CacheLevel,
    ITANIUM2_FULL, ITANIUM2_SCALED,
)


def tiny_config(prefetch=False):
    return CacheConfig(levels=(
        CacheLevelConfig("L1D", 256, 2, 64, 1, fp_bypass=True),
        CacheLevelConfig("L2", 1024, 4, 128, 6),
    ), memory_latency=100, prefetch=prefetch)


class TestCacheLevel:
    def test_first_access_misses(self):
        lvl = CacheLevel(CacheLevelConfig("L", 256, 2, 64, 1))
        assert not lvl.access(0x1000, False)
        assert lvl.misses == 1

    def test_second_access_hits(self):
        lvl = CacheLevel(CacheLevelConfig("L", 256, 2, 64, 1))
        lvl.access(0x1000, False)
        assert lvl.access(0x1000, False)
        assert lvl.hits == 1

    def test_same_line_hits(self):
        lvl = CacheLevel(CacheLevelConfig("L", 256, 2, 64, 1))
        lvl.access(0x1000, False)
        assert lvl.access(0x103F, False)   # same 64B line

    def test_lru_eviction(self):
        # 2-way: three conflicting lines evict the least recent
        lvl = CacheLevel(CacheLevelConfig("L", 128, 2, 64, 1))  # 1 set
        lvl.access(0x0000, False)
        lvl.access(0x1000, False)
        lvl.access(0x2000, False)    # evicts 0x0000
        assert not lvl.access(0x0000, False)

    def test_lru_touch_refreshes(self):
        lvl = CacheLevel(CacheLevelConfig("L", 128, 2, 64, 1))
        lvl.access(0x0000, False)
        lvl.access(0x1000, False)
        lvl.access(0x0000, False)    # refresh 0x0000
        lvl.access(0x2000, False)    # evicts 0x1000, not 0x0000
        assert lvl.access(0x0000, False)

    def test_write_misses_counted(self):
        lvl = CacheLevel(CacheLevelConfig("L", 256, 2, 64, 1))
        lvl.access(0x0, True)
        assert lvl.write_misses == 1

    def test_miss_rate(self):
        lvl = CacheLevel(CacheLevelConfig("L", 256, 2, 64, 1))
        lvl.access(0x0, False)
        lvl.access(0x0, False)
        assert lvl.miss_rate() == 0.5


class TestHierarchy:
    def test_cold_miss_pays_memory_latency(self):
        h = CacheHierarchy(tiny_config())
        lat, level = h.access(0x1000)
        assert level == -1
        assert lat == 1 + 6 + 100

    def test_l1_hit_is_cheap(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x1000)
        lat, level = h.access(0x1000)
        assert level == 0 and lat == 1

    def test_fp_bypasses_l1(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x1000, is_float=True)
        lat, level = h.access(0x1000, is_float=True)
        assert level == 1           # serviced by L2
        assert lat == 6             # no L1 latency component
        assert h.levels[0].accesses == 0

    def test_int_after_fp_misses_l1(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x1000, is_float=True)
        lat, level = h.access(0x1000, is_float=False)
        assert level == 1           # L1 cold, L2 warm

    def test_stats_shape(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x0)
        stats = h.stats()
        assert "L1D" in stats and "total" in stats
        assert stats["total"]["accesses"] == 1

    def test_reset_stats(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x0)
        h.reset_stats()
        assert h.accesses == 0
        assert h.levels[0].misses == 0

    def test_level_lookup(self):
        h = CacheHierarchy(tiny_config())
        assert h.level("L2").config.latency == 6

    def test_total_latency_accumulates(self):
        h = CacheHierarchy(tiny_config())
        h.access(0x0)
        h.access(0x0)
        assert h.total_latency == (107) + 1


class TestPrefetcher:
    def test_stride_prefetch_installs_next_line(self):
        h = CacheHierarchy(tiny_config(prefetch=True))
        # constant stride of one line, same site
        for i in range(4):
            h.access(0x1000 + i * 128, site=7)
        assert h.prefetches > 0

    def test_no_prefetch_without_stable_stride(self):
        h = CacheHierarchy(tiny_config(prefetch=True))
        for addr in (0x1000, 0x5000, 0x2000, 0x9000):
            h.access(addr, site=7)
        assert h.prefetches == 0

    def test_prefetch_disabled_by_default(self):
        h = CacheHierarchy(tiny_config())
        for i in range(8):
            h.access(0x1000 + i * 128, site=7)
        assert h.prefetches == 0


class TestConfigs:
    def test_full_itanium_sizes(self):
        names = [l.name for l in ITANIUM2_FULL.levels]
        assert names == ["L1D", "L2", "L3"]
        assert ITANIUM2_FULL.levels[2].size == 6 * 1024 * 1024

    def test_scaled_preserves_structure(self):
        for lvl in ITANIUM2_SCALED.levels:
            assert lvl.num_sets >= 8

    def test_scaled_method(self):
        cfg = ITANIUM2_FULL.scaled(4)
        assert cfg.levels[0].size == 4 * 1024

    def test_l1_bypass_flag(self):
        assert ITANIUM2_SCALED.levels[0].fp_bypass
        assert not ITANIUM2_SCALED.levels[1].fp_bypass


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_hits_plus_misses_equals_accesses(addrs):
    h = CacheHierarchy(tiny_config())
    for a in addrs:
        h.access(a)
    l1 = h.levels[0]
    assert l1.hits + l1.misses == len(addrs)


@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
def test_repeating_sequence_second_pass_no_worse(addrs):
    """Re-running the same short trace can only produce >= hits."""
    h = CacheHierarchy(tiny_config())
    for a in addrs:
        h.access(a)
    first_hits = h.levels[1].hits
    for a in addrs:
        h.access(a)
    assert h.levels[1].hits >= first_hits


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100),
       st.booleans())
def test_latency_positive_and_bounded(addrs, is_float):
    h = CacheHierarchy(tiny_config())
    worst = 1 + 6 + 100
    for a in addrs:
        lat, level = h.access(a, is_float=is_float)
        assert 0 < lat <= worst
        assert -1 <= level < len(h.levels)
