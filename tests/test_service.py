"""Supervised compile service tests: protocol, breaker, supervisor
resilience (worker kill / hang / OOM / slow start), degradation
ladder, load shedding, CLI exit codes, and serial-vs-service parity
on every workload."""

from __future__ import annotations

import json
import os
import socket as socket_mod
import subprocess
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import CODE_BREAKER, CODE_CACHE, CODE_DEADLINE, \
    CODE_DEGRADED, CODE_HANG, CODE_WORKER, Compiler, CompilerOptions
from repro.service import (
    CompileServer, ProtocolError, Request, ServiceClient, Supervisor,
    SupervisorConfig, decode, encode, single_request, wait_ready,
)
from repro.service.breaker import CircuitBreaker
from repro.service.worker import _type_rows
from repro.workloads import ALL_WORKLOADS

DEMO = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""

BROKEN = "struct bad { int x; ;\nint main() { return 0 }\n"


def _tmpdir() -> str:
    # short paths: AF_UNIX socket paths are length-limited (~107 bytes)
    return tempfile.mkdtemp(prefix="repro-svc-")


@contextmanager
def service(queue_max: int = 8, **cfg_kw):
    """A running daemon on a fresh Unix socket; yields
    (socket_path, server, supervisor)."""
    tmp = _tmpdir()
    cfg_kw.setdefault("pool_size", 1)
    cfg_kw.setdefault("deadline", 60.0)
    cfg_kw.setdefault("cache_dir", os.path.join(tmp, "cache"))
    supervisor = Supervisor(SupervisorConfig(**cfg_kw))
    sock = os.path.join(tmp, "repro.sock")
    server = CompileServer(sock, supervisor, queue_max=queue_max)
    server.start()
    assert wait_ready(sock, timeout=30), "daemon failed to become ready"
    try:
        yield sock, server, supervisor
    finally:
        server.shutdown()


def compile_request(op: str, source: str = DEMO, **extra) -> dict:
    return {"id": 1, "op": op, "sources": [["demo.c", source]], **extra}


def codes(resp: dict) -> set:
    return {d.get("code") for d in resp["diagnostics"] if d.get("code")}


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_roundtrip(self):
        obj = {"op": "ping", "id": 7, "nested": {"a": [1, 2]}}
        assert decode(encode(obj)) == obj

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]\n")

    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            Request.from_dict({"op": "explode"})
        with pytest.raises(ProtocolError):
            Request.from_dict({"op": "analyze"})          # no sources
        with pytest.raises(ProtocolError):
            Request.from_dict({"op": "analyze",
                               "sources": [["a.c", 42]]})
        with pytest.raises(ProtocolError):
            Request.from_dict({"op": "analyze",
                               "sources": [["a.c", "int x;"]],
                               "deadline": -1})
        with pytest.raises(ProtocolError):
            Request.from_dict(
                {"op": "analyze", "sources": [["a.c", "int x;"]],
                 "faults": [{"stage": "apply", "mode": "frobnicate"}]})

    def test_ladder_and_fingerprint(self):
        req = Request.from_dict(compile_request("transform"))
        assert req.ladder() == ("full", "advisory", "legality")
        other = Request.from_dict(compile_request("transform", "int x;"))
        assert req.source_fingerprint() != other.source_fingerprint()
        again = Request.from_dict(compile_request("transform"))
        assert req.source_fingerprint() == again.source_fingerprint()


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = [0.0]
        br = CircuitBreaker(threshold=threshold, cooldown=cooldown,
                            clock=lambda: clock[0])
        return br, clock

    def test_trips_after_threshold(self):
        br, _ = self.make(threshold=3)
        for _ in range(2):
            br.record_failure("k")
            assert br.allow("k")
        br.record_failure("k")
        assert br.state("k") == "open"
        assert not br.allow("k")
        assert br.allow("other")       # keys are independent

    def test_success_resets_the_count(self):
        br, _ = self.make(threshold=2)
        br.record_failure("k")
        br.record_success("k")
        br.record_failure("k")
        assert br.allow("k")           # not tripped: count was reset

    def test_half_open_probe_single_admission(self):
        br, clock = self.make(threshold=1, cooldown=5.0)
        br.record_failure("k")
        assert not br.allow("k")
        clock[0] = 6.0
        assert br.allow("k")           # the probe
        assert not br.allow("k")       # concurrent caller still blocked
        br.record_success("k")
        assert br.allow("k")           # closed again

    def test_failed_probe_reopens(self):
        br, clock = self.make(threshold=1, cooldown=5.0)
        br.record_failure("k")
        clock[0] = 6.0
        assert br.allow("k")
        br.record_failure("k")
        assert not br.allow("k")       # re-opened for a fresh cooldown
        clock[0] = 10.0
        assert not br.allow("k")
        clock[0] = 12.0
        assert br.allow("k")

    def test_snapshot(self):
        br, _ = self.make(threshold=1)
        br.record_failure("k")
        snap = br.snapshot()
        assert snap["keys"]["k"]["state"] == "open"
        assert snap["keys"]["k"]["trips"] == 1


# ---------------------------------------------------------------------------
# Service basics
# ---------------------------------------------------------------------------

class TestServiceBasics:
    def test_analyze_ok(self):
        with service() as (sock, _server, _sup):
            resp = single_request(sock, compile_request("analyze"))
            assert resp["status"] == "ok"
            assert resp["tier"] == "advisory"
            assert resp["attempts"] == 1
            assert resp["payload"]["table1"] == [1, 1, 1]
            assert resp["payload"]["types"]["item"]["plan"] == "peel"

    def test_ping_stats_and_structured_errors(self):
        with service() as (sock, _server, _sup):
            assert single_request(sock, {"op": "ping"})["pong"] is True
            stats = single_request(sock, {"op": "stats"})["stats"]
            assert stats["supervisor"]["pool_size"] == 1
            assert stats["server"]["queue_max"] == 8
            # unknown op: structured error, connection survives
            with ServiceClient(sock) as client:
                bad = client.request({"op": "explode"})
                assert bad["status"] == "error"
                assert "unknown op" in bad["error"]["message"]
                # malformed JSON on the same connection
                client._sock.sendall(b"this is not json\n")
                line, oversized = client._reader.readline()
                assert not oversized
                garbled = decode(line)
                assert garbled["status"] == "error"
                # and the connection still serves real requests
                good = client.request(compile_request("analyze"))
                assert good["status"] == "ok"

    def test_syntax_errors_travel_as_diagnostics(self):
        with service() as (sock, _server, _sup):
            resp = single_request(sock, compile_request("analyze",
                                                        BROKEN))
            assert resp["status"] == "ok"      # the tier was served
            assert any(d["severity"] == "error"
                       for d in resp["diagnostics"])

    def test_load_shedding_busy_response(self):
        with service(queue_max=0, pool_size=1, hang_timeout=0.4,
                     max_retries=0) as (sock, server, _sup):
            slow = compile_request(
                "transform", deadline=30, max_retries=0,
                faults=[{"stage": "apply", "mode": "hang",
                         "seconds": 30, "times": 1}])
            results = {}

            def run_slow():
                results["slow"] = single_request(sock, slow)

            t = threading.Thread(target=run_slow)
            t.start()
            time.sleep(0.25)           # let the slow request take the slot
            fast = single_request(sock, compile_request("analyze"))
            assert fast["status"] == "busy"
            assert fast["retry_after"] > 0
            t.join(timeout=60)
            # the hung request was still answered (degraded, not dropped)
            assert results["slow"]["status"] == "degraded"
            assert server.stats()["server"]["shed"] == 1


# ---------------------------------------------------------------------------
# Resilience: worker kill / hang / OOM / slow start / breaker
# ---------------------------------------------------------------------------

class TestResilience:
    def test_worker_kill_mid_transform_acceptance(self):
        """The ISSUE acceptance scenario: a worker SIGKILLed mid-apply
        still yields a structured response, the daemon stays up, the
        retry (and the next identical request) hit the warm summary
        cache, and a crash report names the pass."""
        with service(pool_size=1, max_retries=2) as (sock, _srv, sup):
            killed = single_request(sock, compile_request(
                "transform",
                faults=[{"stage": "apply", "mode": "kill",
                         "times": 1}]))
            assert killed["status"] == "ok"          # retry succeeded
            assert killed["tier"] == "full"
            assert killed["attempts"] == 2
            assert killed["respawns"] >= 1
            assert CODE_WORKER in codes(killed)
            # the retry restored the FE from the cache the first
            # (killed) attempt populated before dying in the BE
            assert CODE_CACHE in codes(killed)
            assert killed["payload"]["transformed_types"]

            # crash report persisted, naming the pass the worker died in
            crash_dir = Path(sup.config.crash_dir)
            reports = [json.loads(p.read_text())
                       for p in crash_dir.glob("crash-*.json")]
            assert any(r["last_pass"] == "apply"
                       and r["reason"] == "crash"
                       and r["op"] == "transform"
                       and r["fingerprint"] for r in reports)

            # daemon is alive and the identical request is warm
            again = single_request(sock, compile_request("transform"))
            assert again["status"] == "ok"
            assert again["attempts"] == 1
            assert CODE_CACHE in codes(again)
            assert again["payload"]["transformed_sources"] == \
                killed["payload"]["transformed_sources"]

    def test_hang_detected_by_heartbeat_loss(self):
        with service(pool_size=1, hang_timeout=0.4) as (sock, _s, sup):
            resp = single_request(sock, compile_request(
                "transform", deadline=30, max_retries=0,
                faults=[{"stage": "apply", "mode": "hang",
                         "seconds": 60, "times": 9}]))
            # full tier hung and was killed; ladder served advisory
            assert resp["status"] == "degraded"
            assert resp["tier"] == "advisory"
            assert CODE_HANG in codes(resp)
            assert CODE_DEGRADED in codes(resp)
            assert resp["payload"]["table1"] == [1, 1, 1]
            assert sup.stats_counters["hang_kills"] >= 1

    def test_deadline_expiry_with_live_heartbeat(self):
        # silent=False keeps the heartbeat beating, so only the
        # per-request deadline can catch the stall
        with service(pool_size=1, hang_timeout=5.0) as (sock, _s, sup):
            resp = single_request(sock, compile_request(
                "transform", deadline=1.0, max_retries=0,
                faults=[{"stage": "apply", "mode": "hang",
                         "seconds": 60, "times": 9,
                         "silent": False}]))
            assert resp["status"] == "degraded"
            assert resp["tier"] == "advisory"
            assert CODE_DEADLINE in codes(resp)
            assert sup.stats_counters["deadline_kills"] >= 1

    def test_simulated_oom_is_fatal_then_retried(self):
        with service(pool_size=1, max_retries=1) as (sock, _s, sup):
            resp = single_request(sock, compile_request(
                "transform",
                faults=[{"stage": "heuristics", "mode": "oom",
                         "times": 1}]))
            assert resp["status"] == "ok"
            assert resp["attempts"] == 2
            assert CODE_WORKER in codes(resp)
            reports = [json.loads(p.read_text()) for p in
                       Path(sup.config.crash_dir).glob("crash-*.json")]
            assert any(r["reason"] == "fatal"
                       and "out-of-memory" in r["detail"]
                       for r in reports)

    def test_slow_start_worker_is_replaced(self):
        with service(pool_size=1, ready_timeout=0.5,
                     boot_faults=[{"stage": "start",
                                   "mode": "slow-start",
                                   "seconds": 30}],
                     boot_fault_spawns=1) as (sock, _s, sup):
            # start() only returned because the slow worker was killed
            # and replaced by a healthy one
            assert sup.stats()["supervisor"]["spawns"] >= 2
            resp = single_request(sock, compile_request("analyze"))
            assert resp["status"] == "ok"
            reports = [json.loads(p.read_text()) for p in
                       Path(sup.config.crash_dir).glob("crash-*.json")]
            assert any(r["reason"] == "slow-start" for r in reports)

    def test_breaker_opens_and_short_circuits(self):
        with service(pool_size=1, max_retries=0, breaker_threshold=2,
                     breaker_cooldown=300.0) as (sock, _s, sup):
            poisoned = compile_request(
                "transform",
                faults=[{"stage": "request", "mode": "kill",
                         "times": 99}])
            # kill fires at job receipt, so every ladder tier dies
            for _ in range(2):
                resp = single_request(sock, poisoned)
                assert resp["status"] == "error"
                assert resp["error"]["failures"]
            attempts_before = sup.stats_counters["attempts"]
            tripped = single_request(sock, poisoned)
            assert tripped["status"] == "error"
            assert tripped["attempts"] == 0       # no worker touched
            assert CODE_BREAKER in codes(tripped)
            assert sup.stats_counters["attempts"] == attempts_before
            assert all(f["reason"] == "breaker-open"
                       for f in tripped["error"]["failures"])
            # a different workload is unaffected
            clean = single_request(sock, compile_request("analyze"))
            assert clean["status"] == "ok"


# ---------------------------------------------------------------------------
# Drain with a non-empty admission queue
# ---------------------------------------------------------------------------

class TestDrainWhileQueued:
    def test_drain_completes_already_queued_requests(self):
        """A drain issued while requests sit in the admission queue
        must not drop them: everything accepted before the drain gets
        its real answer; only work arriving afterwards is shed."""
        with service(queue_max=8, pool_size=1) as (sock, server, _):
            n = 4
            results: list = [None] * n

            def one(i: int) -> None:
                # distinct sources defeat the summary cache so every
                # request does real work and the queue stays occupied
                src = DEMO.replace("300", str(301 + i))
                results[i] = single_request(
                    sock, {"id": i, "op": "analyze",
                           "sources": [[f"d{i}.c", src]],
                           "options": {"cache": False}},
                    timeout=120)

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            # wait until every request is accepted (in flight) and at
            # least one actually sits in the queue before draining
            deadline = time.monotonic() + 10
            while (server.in_flight < n
                   or server.admission.queue.depth() == 0) \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.in_flight == n
            assert server.admission.queue.depth() > 0, \
                "admission queue never became non-empty"
            drain = single_request(sock, {"op": "drain"})
            assert drain["draining"] is True
            assert drain["in_flight"] >= 1
            for t in threads:
                t.join(timeout=120)
            statuses = [r["status"] for r in results]
            assert all(s in ("ok", "degraded") for s in statuses), \
                statuses


# ---------------------------------------------------------------------------
# CLI: serve + client subcommands and their exit codes
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def daemon():
    """A `repro serve` daemon subprocess shared by the CLI tests."""
    tmp = _tmpdir()
    sock = os.path.join(tmp, "cli.sock")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--pool-size", "2", "--deadline", "60", "--max-retries", "2",
         "--hang-timeout", "0.5", "--breaker-threshold", "2",
         "--breaker-cooldown", "300",
         "--cache-dir", os.path.join(tmp, "cache")],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    assert wait_ready(sock, timeout=60), "serve subprocess not ready"
    yield sock, tmp
    proc.terminate()
    proc.wait(timeout=10)


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestCliService:
    def test_client_analyze_exit_0(self, daemon, demo_file, capsys):
        sock, _ = daemon
        assert main(["client", "analyze", demo_file,
                     "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "record types: 1" in out
        assert "plan=peel" in out

    def test_client_transform_writes_output(self, daemon, demo_file,
                                            tmp_path, capsys):
        sock, _ = daemon
        out_file = tmp_path / "out.c"
        assert main(["client", "transform", demo_file,
                     "--socket", sock, "-o", str(out_file)]) == 0
        assert "struct" in out_file.read_text()

    def test_exit_0_under_worker_crash(self, daemon, demo_file,
                                       capsys):
        """A worker kill mid-transform is retried transparently: the
        client still exits 0 with the full result."""
        sock, _ = daemon
        code = main(["client", "transform", demo_file,
                     "--socket", sock,
                     "--inject-fault", "apply:kill:1"])
        assert code == 0
        err = capsys.readouterr().err
        assert "worker" in err        # the retry is reported, not hidden

    def test_exit_1_under_deadline_expiry(self, daemon, demo_file,
                                          capsys):
        sock, _ = daemon
        code = main(["client", "transform", demo_file,
                     "--socket", sock, "--deadline", "1.5",
                     "--max-retries", "0",
                     "--inject-fault", "apply:hang:9:60"])
        assert code == 1
        err = capsys.readouterr().err
        assert "degraded" in err

    def test_exit_1_under_breaker_open(self, daemon, tmp_path, capsys):
        sock, _ = daemon
        # a unique workload so the breaker key is this test's own
        unique = tmp_path / "unique.c"
        unique.write_text(DEMO.replace("item", "brkitem"))
        args = ["client", "transform", str(unique), "--socket", sock,
                "--max-retries", "0",
                "--inject-fault", "request:kill:99"]
        assert main(args) == 1        # every tier dies
        assert main(args) == 1        # breaker threshold reached
        code = main(["client", "transform", str(unique),
                     "--socket", sock, "--max-retries", "0"])
        assert code == 1              # short-circuited: breaker open
        err = capsys.readouterr().err
        assert "breaker" in err

    def test_exit_1_on_source_errors(self, daemon, tmp_path, capsys):
        sock, _ = daemon
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        assert main(["client", "analyze", str(bad),
                     "--socket", sock]) == 1

    def test_exit_2_on_unreachable_daemon(self, demo_file, capsys):
        assert main(["client", "analyze", demo_file,
                     "--socket", "/nonexistent/no.sock"]) == 2

    def test_exit_2_on_missing_file(self, daemon, capsys):
        sock, _ = daemon
        assert main(["client", "analyze", "/no/such/file.c",
                     "--socket", sock]) == 2

    def test_bad_fault_flag_rejected(self, daemon, demo_file, capsys):
        sock, _ = daemon
        assert main(["client", "analyze", demo_file, "--socket", sock,
                     "--inject-fault", "nonsense"]) == 2


# ---------------------------------------------------------------------------
# Serial-vs-service parity on every workload
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def parity_service():
    tmp = _tmpdir()
    sup = Supervisor(SupervisorConfig(
        pool_size=2, deadline=120.0,
        cache_dir=os.path.join(tmp, "cache")))
    sock = os.path.join(tmp, "parity.sock")
    server = CompileServer(sock, sup, queue_max=8)
    server.start()
    assert wait_ready(sock, timeout=30)
    yield sock
    server.shutdown()


class TestParity:
    @pytest.mark.parametrize(
        "workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_analyze_parity(self, parity_service, workload):
        """The service's advisory answer equals a plain in-process
        serial compile for every workload."""
        sources = workload.sources("train")
        resp = single_request(parity_service, {
            "op": "analyze",
            "sources": [[n, t] for n, t in sources],
            "options": {"cache": False}})
        assert resp["status"] == "ok"
        direct = Compiler(CompilerOptions(transform=False)) \
            .compile_sources(sources)
        assert resp["payload"]["table1"] == list(direct.table1_row())
        assert resp["payload"]["types"] == _type_rows(direct)

    @pytest.mark.parametrize("name", ["181.mcf", "179.art"])
    def test_transform_parity(self, parity_service, name):
        from repro.transform import program_sources
        workload = next(w for w in ALL_WORKLOADS if w.name == name)
        sources = workload.sources("train")
        resp = single_request(parity_service, {
            "op": "transform",
            "sources": [[n, t] for n, t in sources],
            "options": {"cache": False}}, timeout=300)
        assert resp["status"] == "ok"
        direct = Compiler(CompilerOptions(
            transform=True, verify_transforms=True)) \
            .compile_sources(sources)
        expect = [[n, t] for n, t in
                  program_sources(direct.transformed)]
        assert resp["payload"]["transformed_sources"] == expect
