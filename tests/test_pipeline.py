"""End-to-end pipeline and advisor tests."""

import pytest

from repro.core import (
    Compiler, CompilerOptions, compile_source, compile_program, SCHEMES,
)
from repro.frontend import Program
from repro.runtime import run_program
from repro.profit import collect_feedback
from repro.advisor import (
    advisor_report, AdvisorOptions, hotness_bar, rw_bar, affinity_vcg,
    program_vcg, classify_type, classify_report, affinity_clusters,
    ClassifierParams,
)

SRC = """
struct item { long key; long weight; long spare1; long spare2; };
struct item *items;
int main() {
    int i; int it; long s = 0;
    items = (struct item*) malloc(80 * sizeof(struct item));
    for (i = 0; i < 80; i++) {
        items[i].key = i;
        items[i].weight = i * 3;
        items[i].spare1 = 0;
        items[i].spare2 = 0;
    }
    for (it = 0; it < 15; it++)
        for (i = 0; i < 80; i++)
            s += items[i].key * items[i].weight;
    for (i = 0; i < 80; i++) s += items[i].spare1 + items[i].spare2;
    printf("%ld", s);
    return 0;
}
"""


class TestPipeline:
    def test_compile_source_end_to_end(self):
        res = compile_source(SRC)
        assert res.legality.counts()[0] == 1
        assert res.transformed is not res.program
        assert run_program(res.program).stdout == \
            run_program(res.transformed).stdout

    def test_all_static_schemes_run(self):
        for scheme in ("SPBO", "ISPBO", "ISPBO.NO", "ISPBO.W"):
            res = compile_source(SRC, CompilerOptions(scheme=scheme))
            assert res.weights.scheme == scheme

    def test_pbo_requires_feedback(self):
        with pytest.raises(ValueError):
            CompilerOptions(scheme="PBO")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            CompilerOptions(scheme="MAGIC")

    def test_pbo_scheme_end_to_end(self):
        p = Program.from_source(SRC)
        fb = collect_feedback(Program.from_source(SRC))
        res = compile_program(p, CompilerOptions(scheme="PBO",
                                                 feedback=fb))
        assert res.weights.scheme == "PBO"
        assert run_program(res.program).stdout == \
            run_program(res.transformed).stdout

    def test_transform_false_keeps_program(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        assert res.transformed is res.program

    def test_timings_recorded(self):
        res = compile_source(SRC)
        assert set(res.timings) == {"fe", "ipa", "be"}
        assert all(t >= 0 for t in res.timings.values())

    def test_table_rows(self):
        res = compile_source(SRC)
        types, legal, relaxed = res.table1_row()
        assert (types, legal) == (1, 1)
        t, tt, sd = res.table3_row()
        assert t == 1 and tt == 1 and sd >= 2

    def test_decision_lookup(self):
        res = compile_source(SRC)
        assert res.decision_for("item") is not None
        assert res.decision_for("missing") is None

    def test_schemes_constant(self):
        assert "ISPBO" in SCHEMES and "PBO" in SCHEMES

    def test_compiler_reusable(self):
        c = Compiler()
        r1 = c.compile(Program.from_source(SRC))
        r2 = c.compile(Program.from_source(SRC))
        assert r1.table1_row() == r2.table1_row()


class TestAdvisorReport:
    def test_report_contains_figure2_elements(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        text = advisor_report(res)
        assert "Type     : item" in text
        assert "Fields   : 4" in text
        assert "Transform:" in text
        assert "Status   :" in text
        assert 'Field[0]' in text
        assert "aff:" in text
        assert "read :" in text

    def test_report_with_dcache_samples(self):
        fb = collect_feedback(Program.from_source(SRC), pmu_period=4)
        res = compile_source(SRC, CompilerOptions(transform=False))
        text = advisor_report(res, feedback=fb)
        assert "miss :" in text
        assert "[cyc]" in text

    def test_unused_fields_marked(self):
        src = SRC.replace(
            "for (i = 0; i < 80; i++) s += items[i].spare1 "
            "+ items[i].spare2;", "") \
            .replace("items[i].spare1 = 0;\n", "") \
            .replace("items[i].spare1 = 0;", "") \
            .replace("items[i].spare2 = 0;", "")
        res = compile_source(src, CompilerOptions(transform=False))
        text = advisor_report(res)
        assert "*unused*" in text

    def test_types_sorted_by_hotness(self):
        src = SRC.replace("struct item *items;",
                          "struct coldtype { long z; };\n"
                          "struct coldtype *ct;\n"
                          "struct item *items;") \
            .replace("return 0;\n}",
                     "ct = (struct coldtype*) malloc("
                     "4 * sizeof(struct coldtype));"
                     "ct[0].z = 1; return 0;\n}")
        res = compile_source(src, CompilerOptions(transform=False))
        text = advisor_report(res)
        assert text.index("Type     : item") < \
            text.index("Type     : coldtype")

    def test_max_types_option(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        text = advisor_report(res, options=AdvisorOptions(max_types=0))
        assert "Type     :" not in text

    def test_bars(self):
        assert hotness_bar(100.0) == "|##########|"
        assert hotness_bar(0.0) == "|----------|"
        assert hotness_bar(50.0).count("#") == 5
        assert rw_bar(8, 0) == "|RRRRRRRR|"
        assert rw_bar(0, 8) == "|WWWWWWWW|"
        assert rw_bar(0, 0) == "|        |"
        mixed = rw_bar(6, 2)
        assert mixed.count("R") == 6 and mixed.count("w") == 2


class TestVCG:
    def test_vcg_structure(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        text = affinity_vcg(res.profiles["item"])
        assert text.startswith("graph: {")
        assert 'node: { title: "key"' in text
        assert "edge:" in text
        assert text.rstrip().endswith("}")

    def test_program_vcg_concatenates(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        text = program_vcg(res.profiles)
        assert text.count("graph: {") == 1


class TestClassifier:
    TWO_PHASE = """
    struct rec { long pa1; long pa2; long pb1; long pb2; };
    struct rec *g;
    int main() {
        int i; int it; long s = 0;
        g = (struct rec*) malloc(60 * sizeof(struct rec));
        for (i = 0; i < 60; i++) {
            g[i].pa1 = i; g[i].pa2 = i; g[i].pb1 = i; g[i].pb2 = i;
        }
        for (it = 0; it < 9; it++)
            for (i = 0; i < 60; i++) s += g[i].pa1 * g[i].pa2;
        for (it = 0; it < 9; it++)
            for (i = 0; i < 60; i++) s += g[i].pb1 * g[i].pb2;
        printf("%ld", s);
        return 0;
    }
    """

    def test_clusters_split_by_phase(self):
        res = compile_source(self.TWO_PHASE,
                             CompilerOptions(transform=False))
        clusters = affinity_clusters(res.profiles["rec"])
        assert ["pa1", "pa2"] in clusters
        assert ["pb1", "pb2"] in clusters

    def test_source_split_advice_for_hot_disjoint_groups(self):
        res = compile_source(self.TWO_PHASE,
                             CompilerOptions(transform=False))
        advice = classify_type(res.profiles["rec"])
        kinds = {a.kind for a in advice}
        assert "source-split" in kinds

    def test_cold_group_advice(self):
        res = compile_source(SRC, CompilerOptions(transform=False))
        advice = classify_type(res.profiles["item"])
        assert any(a.kind == "split-out" for a in advice)

    def test_group_advice_for_affine_hot_groups(self):
        src = self.TWO_PHASE.replace(
            "for (i = 0; i < 60; i++) s += g[i].pb1 * g[i].pb2;",
            "for (i = 0; i < 60; i++) "
            "s += g[i].pb1 * g[i].pb2 + g[i].pa1;")
        res = compile_source(src, CompilerOptions(transform=False))
        # pa and pb groups share a hot edge now: with a high clustering
        # threshold they stay separate but register high mutual affinity
        advice = classify_type(
            res.profiles["rec"],
            params=ClassifierParams(cluster_threshold=1.01,
                                    high_affinity=0.3))
        kinds = {a.kind for a in advice}
        assert "group" in kinds

    def test_report_text(self):
        res = compile_source(self.TWO_PHASE,
                             CompilerOptions(transform=False))
        text = classify_report(res.profiles["rec"])
        assert text.startswith("Advice for struct rec:")
        assert "[source-split]" in text
