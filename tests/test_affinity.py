"""Affinity groups, graphs, hotness, and sequential-access tests."""

import pytest

from repro.frontend import Program
from repro.ir import lower_program, find_loops
from repro.profit import estimate_spbo, compute_profiles
from repro.profit.seqaccess import loop_record_sequential


def profiles_of(src):
    p = Program.from_source(src)
    cfgs = lower_program(p)
    weights = estimate_spbo(cfgs)
    return compute_profiles(p, cfgs, weights)


SRC = """
struct t { long a; long b; long c; long d; };
struct t *g;
int main() {
    int i;
    g = (struct t*) malloc(64 * sizeof(struct t));
    for (i = 0; i < 64; i++) {        // loop 1: a and b together
        g[i].a = i;
        g[i].b = i * 2;
    }
    for (i = 0; i < 64; i++) {        // loop 2: c alone
        g[i].c = g[i].c + 1;
    }
    g[0].d = 5;                        // straight line: d
    return 0;
}
"""


class TestGroups:
    def test_groups_formed_per_loop(self):
        prof = profiles_of(SRC)["t"]
        sets = {g.fields for g in prof.groups}
        assert frozenset({"a", "b"}) in sets
        assert frozenset({"c"}) in sets
        assert frozenset({"d"}) in sets

    def test_loop_groups_outweigh_straight_line(self):
        prof = profiles_of(SRC)["t"]
        w = {g.fields: g.weight for g in prof.groups}
        assert w[frozenset({"a", "b"})] > w[frozenset({"d"})]

    def test_identical_groups_merge(self):
        src = """
        struct t { long a; };
        struct t *g;
        int main() {
            int i;
            g = (struct t*) malloc(8 * sizeof(struct t));
            for (i = 0; i < 8; i++) g[i].a = 1;
            for (i = 0; i < 8; i++) g[i].a += 2;
            return 0;
        }
        """
        prof = profiles_of(src)["t"]
        groups = [g for g in prof.groups if g.fields == frozenset({"a"})]
        assert len(groups) == 1      # merged by adding weights


class TestAffinityGraph:
    def test_same_loop_fields_affine(self):
        prof = profiles_of(SRC)["t"]
        assert prof.affinity_between("a", "b") > 0.0

    def test_different_loop_fields_not_affine(self):
        prof = profiles_of(SRC)["t"]
        assert prof.affinity_between("a", "c") == 0.0

    def test_self_affinity_exists(self):
        prof = profiles_of(SRC)["t"]
        assert prof.affinity_between("a", "a") > 0.0

    def test_symmetry(self):
        prof = profiles_of(SRC)["t"]
        assert prof.affinity_between("a", "b") == \
            prof.affinity_between("b", "a")

    def test_networkx_graph(self):
        g = profiles_of(SRC)["t"].affinity_graph()
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")
        assert set(g.nodes) == {"a", "b", "c", "d"}

    def test_relative_affinities(self):
        prof = profiles_of(SRC)["t"]
        rel = prof.relative_affinities("a")
        assert rel["b"] == pytest.approx(100.0)


class TestHotness:
    def test_loop_fields_hotter_than_straight_line(self):
        prof = profiles_of(SRC)["t"]
        rel = prof.relative_hotness()
        assert rel["a"] > rel["d"]
        assert rel["d"] < 25.0

    def test_read_write_separation(self):
        prof = profiles_of(SRC)["t"]
        # 'a' is only written in the loop; 'c' is read and written
        assert prof.write_counts.get("a", 0.0) > 0.0
        assert prof.read_counts.get("a", 0.0) == 0.0
        assert prof.read_counts.get("c", 0.0) > 0.0

    def test_type_hotness_sums_fields(self):
        prof = profiles_of(SRC)["t"]
        total = sum(prof.hotness_by_field().values())
        assert prof.type_hotness() == pytest.approx(total)

    def test_relative_hotness_peak_is_100(self):
        rel = profiles_of(SRC)["t"].relative_hotness()
        assert max(rel.values()) == pytest.approx(100.0)

    def test_unreferenced_type_all_zero(self):
        src = """
        struct ghost { long x; };
        int main() { return 0; }
        """
        prof = profiles_of(src)["ghost"]
        assert prof.type_hotness() == 0.0
        assert prof.relative_hotness() == {"x": 0.0}


class TestSequentialClassification:
    def test_induction_sweep_is_sequential(self):
        p = Program.from_source(SRC)
        cfgs = lower_program(p)
        nest = find_loops(cfgs["main"])
        for loop in nest.loops:
            seq = loop_record_sequential(cfgs["main"], loop)
            assert seq.get("t", False) is True

    def test_loaded_index_is_random(self):
        src = """
        struct t { long v; };
        struct idx { long at; };
        struct t *data;
        struct idx *order;
        int main() {
            int k;
            data = (struct t*) malloc(32 * sizeof(struct t));
            order = (struct idx*) malloc(32 * sizeof(struct idx));
            for (k = 0; k < 32; k++) {
                data[order[k].at].v = 1;     // index loaded from memory
            }
            return 0;
        }
        """
        p = Program.from_source(src)
        cfgs = lower_program(p)
        nest = find_loops(cfgs["main"])
        seq = loop_record_sequential(cfgs["main"], nest.loops[0])
        assert seq["t"] is False
        assert seq["idx"] is True

    def test_pointer_chase_is_random(self):
        src = """
        struct n { struct n *next; long v; };
        struct n *head;
        int main() {
            struct n *p = head;
            while (p != NULL) { p->v = 1; p = p->next; }
            return 0;
        }
        """
        p = Program.from_source(src)
        cfgs = lower_program(p)
        nest = find_loops(cfgs["main"])
        seq = loop_record_sequential(cfgs["main"], nest.loops[0])
        assert seq["n"] is False

    def test_affine_local_pointer_is_sequential(self):
        src = """
        struct t { long a; long b; };
        struct t *g;
        int main() {
            int i;
            g = (struct t*) malloc(16 * sizeof(struct t));
            for (i = 0; i < 16; i++) {
                struct t *p = &g[i];
                p->a = p->b + 1;
            }
            return 0;
        }
        """
        p = Program.from_source(src)
        cfgs = lower_program(p)
        nest = find_loops(cfgs["main"])
        seq = loop_record_sequential(cfgs["main"], nest.loops[0])
        assert seq["t"] is True

    def test_groups_carry_sequential_flag(self):
        prof = profiles_of(SRC)["t"]
        loop_groups = [g for g in prof.groups
                       if g.fields in (frozenset({"a", "b"}),
                                       frozenset({"c"}))]
        assert all(g.sequential for g in loop_groups)
