"""The pass-DAG scheduler engine and its pipeline integration.

Contract under test (DESIGN.md "The pass DAG"):

- the graph validates before anything runs — duplicates, unknown
  dependency edges, and cycles are :class:`DagError`s with a witness;
- ``jobs=1`` executes in deterministic builder order, ``jobs>1`` in
  any topological order, and *results are identical either way* —
  including under an adversarially shuffled ready queue;
- merge barriers observe every unit node's result, dynamic nodes
  (the BE planner's per-decision applies) obey the same validation,
  and a failing node aborts cleanly instead of wedging the queue;
- PhaseGuard containment stays per-node: an injected pass fault under
  ``jobs=4`` demotes conservatively and the compile still finishes.
"""

import random
import threading

import pytest

from repro.core import Compiler, CompilerOptions, compile_program
from repro.core import fe
from repro.core.dag import (
    DagError, DagScheduler, PassDAG, effective_cores,
)
from repro.core.faults import inject_fault
from repro.frontend import Program
from repro.transform import program_sources
from repro.workloads import ALL_WORKLOADS


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def result_fingerprint(result):
    """Everything user-visible about one compilation."""
    return (
        [(d.type_name, d.action, sorted(d.cold_fields),
          sorted(d.dead_fields), sorted(map(tuple, d.groups or [])))
         for d in result.decisions],
        result.diagnostics.render("warning"),
        program_sources(result.transformed),
    )


@pytest.fixture
def many_cores(monkeypatch):
    """Defeat the core-count clamp so the parse pool path runs even on
    a single-core machine."""
    monkeypatch.setattr(fe.os, "cpu_count", lambda: 4)


def diamond() -> PassDAG:
    """a -> (b, c) -> d: the smallest graph with real concurrency."""
    dag = PassDAG()
    dag.add("a", lambda ctx: 1, phase="fe")
    dag.add("b", lambda ctx: ctx["a"] + 10, deps=("a",), phase="ipa")
    dag.add("c", lambda ctx: ctx["a"] + 100, deps=("a",), phase="ipa")
    dag.add("d", lambda ctx: ctx["b"] + ctx["c"], deps=("b", "c"),
            phase="be")
    return dag


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------

class TestTopology:
    def test_duplicate_node_rejected(self):
        dag = PassDAG()
        dag.add("a", lambda ctx: 1)
        with pytest.raises(DagError, match="duplicate node 'a'"):
            dag.add("a", lambda ctx: 2)

    def test_unknown_dependency_rejected(self):
        dag = PassDAG()
        dag.add("a", lambda ctx: 1, deps=("ghost",))
        with pytest.raises(DagError, match="unknown node 'ghost'"):
            dag.validate()

    def test_seeded_names_satisfy_dependencies(self):
        dag = PassDAG()
        dag.add("a", lambda ctx: ctx["seeded"], deps=("seeded",))
        dag.validate({"seeded"})          # must not raise
        results, _ = DagScheduler(1).run(dag, seeded={"seeded": 7})
        assert results["a"] == 7

    def test_cycle_detected_with_witness(self):
        dag = PassDAG()
        dag.add("a", lambda ctx: 1, deps=("c",))
        dag.add("b", lambda ctx: 1, deps=("a",))
        dag.add("c", lambda ctx: 1, deps=("b",))
        with pytest.raises(DagError) as exc:
            dag.validate()
        msg = str(exc.value)
        assert "dependency cycle" in msg
        # the witness walk names every member of the cycle
        assert all(n in msg for n in ("a", "b", "c"))

    def test_self_cycle_detected(self):
        dag = PassDAG()
        dag.add("a", lambda ctx: 1, deps=("a",))
        with pytest.raises(DagError, match="cycle"):
            dag.validate()

    def test_topo_order_respects_deps_and_insertion(self):
        dag = diamond()
        order = dag.topo_order()
        assert order == ["a", "b", "c", "d"]
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")

    def test_cycle_raises_before_any_node_runs(self):
        ran = []
        dag = PassDAG()
        dag.add("a", lambda ctx: ran.append("a"), deps=("b",))
        dag.add("b", lambda ctx: ran.append("b"), deps=("a",))
        with pytest.raises(DagError):
            DagScheduler(2).run(dag)
        assert ran == []


# ---------------------------------------------------------------------------
# execution: serial, parallel, barriers, determinism
# ---------------------------------------------------------------------------

class TestExecution:
    def test_serial_executes_in_builder_order(self):
        ran = []
        dag = PassDAG()
        for name in ("n0", "n1", "n2"):
            dag.add(name, lambda ctx, n=name: ran.append(n) or n)
        results, report = DagScheduler(1).run(dag)
        assert ran == ["n0", "n1", "n2"]
        assert report.mode == "serial"
        assert results["n2"] == "n2"

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_diamond_results_identical_across_jobs(self, jobs):
        results, report = DagScheduler(jobs).run(diamond())
        assert results == {"a": 1, "b": 11, "c": 101, "d": 112}
        assert report.mode == ("serial" if jobs == 1 else "parallel")
        assert report.node_count == 4

    def test_barrier_waits_for_every_unit(self):
        """A merge node must observe all N unit results, however the
        scheduler interleaves the units."""
        n = 12
        dag = PassDAG()
        for i in range(n):
            dag.add(f"unit{i}", lambda ctx, i=i: i, phase="fe")
        dag.add("merge",
                lambda ctx: sum(ctx[f"unit{i}"] for i in range(n)),
                deps=tuple(f"unit{i}" for i in range(n)), phase="fe")
        for jobs in (1, 4):
            results, _ = DagScheduler(jobs).run(dag)
            assert results["merge"] == sum(range(n))

    def test_shuffled_ready_queue_is_deterministic(self):
        """Dispatch order must not leak into results: run the same
        graph under several adversarial ready-queue shuffles."""
        baseline, _ = DagScheduler(1).run(diamond())
        for seed in range(6):
            rng = random.Random(seed)
            sched = DagScheduler(4, shuffle=rng.shuffle)
            results, _ = sched.run(diamond())
            assert results == baseline

    def test_parallel_actually_overlaps_independent_nodes(self):
        """Two independent nodes blocked on the same event can only
        both finish if the scheduler runs them concurrently."""
        gate = threading.Barrier(2, timeout=10)
        dag = PassDAG()
        dag.add("left", lambda ctx: (gate.wait(), "L")[1])
        dag.add("right", lambda ctx: (gate.wait(), "R")[1])
        results, report = DagScheduler(2).run(dag)
        assert results == {"left": "L", "right": "R"}
        assert report.mode == "parallel"

    def test_node_exception_aborts_without_wedging(self):
        """An exception escaping a node (i.e. *not* contained by a
        guard) re-raises in the caller; undispatched nodes are skipped
        and the scheduler does not hang on its queue."""
        dag = PassDAG()
        dag.add("ok", lambda ctx: 1)
        dag.add("boom", lambda ctx: 1 / 0, deps=("ok",))
        dag.add("after", lambda ctx: 2, deps=("boom",))
        for jobs in (1, 4):
            with pytest.raises(ZeroDivisionError):
                DagScheduler(jobs).run(dag)

    def test_missing_dependency_edge_is_a_loud_error(self):
        """Reading an undeclared dependency raises KeyError instead of
        silently returning a stale value."""
        dag = PassDAG()
        dag.add("a", lambda ctx: 1)
        dag.add("b", lambda ctx: ctx["zzz_never_declared"], deps=("a",))
        with pytest.raises(KeyError, match="missing"):
            DagScheduler(1).run(dag)


class TestDynamicGrowth:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_planner_appends_chained_nodes(self, jobs):
        dag = PassDAG()
        dag.add("base", lambda ctx: 10)

        def plan(ctx):
            ctx.add_nodes([
                {"name": "apply[x]",
                 "fn": lambda c: c["base"] + 1, "deps": ("base",)},
                {"name": "apply[y]",
                 "fn": lambda c: c["apply[x]"] * 2,
                 "deps": ("apply[x]",)},
            ])
            return None

        dag.add("plan", plan, deps=("base",))
        results, report = DagScheduler(jobs).run(dag)
        assert results["apply[y]"] == 22
        assert report.node_count == 4     # base, plan, apply[x|y]

    def test_dynamic_duplicate_rejected(self):
        dag = PassDAG()
        dag.add("base", lambda ctx: 1)
        dag.add("plan", lambda ctx: ctx.add_nodes(
            [{"name": "base", "fn": lambda c: 2}]), deps=("base",))
        with pytest.raises(DagError, match="duplicate"):
            DagScheduler(1).run(dag)

    def test_dynamic_unknown_dep_rejected(self):
        dag = PassDAG()
        dag.add("plan", lambda ctx: ctx.add_nodes(
            [{"name": "n", "fn": lambda c: 1, "deps": ("ghost",)}]))
        with pytest.raises(DagError, match="unknown"):
            DagScheduler(1).run(dag)


class TestReport:
    def test_phase_window_and_critical_path(self):
        _, report = DagScheduler(1).run(diamond())
        assert report.phase_window("fe") > 0.0
        assert report.phase_window("nonesuch") == 0.0
        seconds, path = report.critical_path()
        assert seconds > 0.0
        # any critical path through the diamond starts at a, ends at d
        assert path[0] == "a" and path[-1] == "d"
        d = report.to_dict()
        assert d["nodes"] == 4
        assert d["mode"] == "serial"
        assert d["wall_ms"] >= d["critical_path_ms"] * 0.0
        assert d["critical_path"] == path

    def test_effective_cores_positive(self):
        assert effective_cores() >= 1


# ---------------------------------------------------------------------------
# pipeline integration
# ---------------------------------------------------------------------------

SRC = """
struct pt { int x; int y; char tag; };
int main() {
  struct pt *p = (struct pt*)malloc(sizeof(struct pt));
  int i;
  int acc = 0;
  for (i = 0; i < 8; i = i + 1) { p->x = i; acc = acc + p->x; }
  free(p);
  printf("%d\\n", acc);
  return 0;
}
"""


class TestPipelineIntegration:
    def test_scheduler_section_reported(self):
        res = Compiler(CompilerOptions(jobs=1)).compile_sources(
            [("m.c", SRC)])
        sched = res.scheduler
        assert sched["mode"] == "serial"
        assert sched["jobs"] == 1
        assert sched["nodes"] >= 10
        assert sched["wall_ms"] > 0.0
        assert sched["critical_path_ms"] > 0.0
        assert sched["restored_fe"] is False
        # the per-decision apply chain feeds the critical path's tail
        assert sched["critical_path"][0].startswith("parse[")

    def test_parallel_mode_reported(self, many_cores):
        res = Compiler(CompilerOptions(jobs=4)).compile_sources(
            [("m.c", SRC)])
        assert res.scheduler["mode"] == "parallel"
        assert res.scheduler["jobs"] == 4

    @pytest.mark.parametrize("workload", ALL_WORKLOADS,
                             ids=[w.name for w in ALL_WORKLOADS])
    def test_workloads_serial_equals_parallel_dag(self, workload,
                                                  many_cores):
        """The acceptance bar: the whole DAG (not just the FE) byte-
        identical between jobs=1 and jobs=4 on all 12 workloads."""
        sources = workload.sources("train")
        want = result_fingerprint(
            Compiler(CompilerOptions(jobs=1)).compile_sources(sources))
        got = result_fingerprint(
            Compiler(CompilerOptions(jobs=4)).compile_sources(sources))
        assert got == want

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_contained_fault_does_not_wedge(self, jobs, many_cores):
        """PhaseGuard demotion inside a node must leave the ready
        queue healthy: the compile finishes, conservatively."""
        with inject_fault("legality", mode="raise") as spec:
            res = Compiler(CompilerOptions(jobs=jobs)).compile_sources(
                [("m.c", SRC)])
        assert spec.fired == 1            # merge barrier fired it once
        assert res.ok                     # contained, not failed
        assert res.degraded
        assert any(d.phase == "legality"
                   for d in res.diagnostics.contained())
        assert "FAULT" in res.legality.types["pt"].invalid_reasons
        # every decision demoted; nothing transformed
        assert not res.transformed_types()

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_per_unit_fault_contained_per_node(self, jobs, many_cores):
        """A fault in one unit's summarize node demotes that unit's
        slice only; the sibling unit still contributes."""
        other = ("n.c", "struct q { long a; long b; };\n"
                        "int touch(struct q *p) { return (int)p->a; }\n")
        with inject_fault("legality[m.c]", mode="raise"):
            res = Compiler(CompilerOptions(jobs=jobs)).compile_sources(
                [("m.c", SRC), other])
        assert res.ok
        assert any(d.phase == "legality[m.c]"
                   for d in res.diagnostics.contained())

    def test_program_path_uses_dag_too(self):
        res = compile_program(Program.from_source(SRC))
        assert res.scheduler["nodes"] >= 8
        assert res.scheduler["mode"] == "serial"
