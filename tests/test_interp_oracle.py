"""Oracle differential tests: interpreter arithmetic vs Python.

Random integer expression trees are evaluated both by the simulated
machine (via a generated MiniC program) and by a Python oracle with C
semantics; results must agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import Program
from repro.runtime import run_program


def _cdiv(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


@st.composite
def int_exprs(draw, depth=0):
    """(c_source_text, python_value) pairs for long arithmetic."""
    if depth >= 3 or draw(st.booleans()):
        v = draw(st.integers(-1000, 1000))
        return (f"({v})", v)
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                               "<", ">", "=="]))
    ltext, lval = draw(int_exprs(depth=depth + 1))
    rtext, rval = draw(int_exprs(depth=depth + 1))
    if op in ("/", "%") and rval == 0:
        rtext, rval = "(7)", 7
    text = f"({ltext} {op} {rtext})"
    if op == "+":
        val = lval + rval
    elif op == "-":
        val = lval - rval
    elif op == "*":
        val = lval * rval
    elif op == "/":
        val = _cdiv(lval, rval)
    elif op == "%":
        val = lval - _cdiv(lval, rval) * rval
    elif op == "&":
        val = lval & rval
    elif op == "|":
        val = lval | rval
    elif op == "^":
        val = lval ^ rval
    elif op == "<":
        val = 1 if lval < rval else 0
    elif op == ">":
        val = 1 if lval > rval else 0
    else:
        val = 1 if lval == rval else 0
    return (text, val)


@settings(max_examples=60, deadline=None)
@given(int_exprs())
def test_long_arithmetic_matches_oracle(pair):
    text, expected = pair
    src = f'int main() {{ long r = {text}; ' \
          f'printf("%ld", r); return 0; }}'
    result = run_program(Program.from_source(src))
    assert result.stdout == str(expected)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
def test_struct_field_sum_matches_oracle(values):
    fields = "\n".join(f"    long f{i};" for i in range(len(values)))
    writes = "\n".join(f"    g.f{i} = {v};"
                       for i, v in enumerate(values))
    total = " + ".join(f"g.f{i}" for i in range(len(values)))
    src = f"""
struct t {{
{fields}
}};
struct t g;
int main() {{
{writes}
    printf("%ld", {total});
    return 0;
}}
"""
    result = run_program(Program.from_source(src))
    assert result.stdout == str(sum(values))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
       st.integers(0, 15))
def test_array_store_load_matches_oracle(values, probe):
    probe = probe % len(values)
    writes = "\n".join(f"    a[{i}] = {v};"
                       for i, v in enumerate(values))
    src = f"""
int main() {{
    long a[{len(values)}];
{writes}
    printf("%ld", a[{probe}]);
    return 0;
}}
"""
    result = run_program(Program.from_source(src))
    assert result.stdout == str(values[probe])
