"""Type system and struct layout tests, including layout invariants
checked with hypothesis."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.typesys import (
    VOID, CHAR, UCHAR, SHORT, INT, UINT, LONG, ULONG, FLOAT, DOUBLE,
    PointerType, ArrayType, FunctionType, RecordType, Field, NamedType,
    TypeError_, common_arithmetic_type, pointer_to, array_of,
)


class TestScalars:
    def test_lp64_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert LONG.size == 8
        assert FLOAT.size == 4
        assert DOUBLE.size == 8
        assert PointerType(VOID).size == 8

    def test_alignment_equals_size_for_scalars(self):
        for t in (CHAR, SHORT, INT, LONG, FLOAT, DOUBLE):
            assert t.align == t.size

    def test_int_ranges(self):
        assert INT.min_value() == -(2 ** 31)
        assert INT.max_value() == 2 ** 31 - 1
        assert UINT.min_value() == 0
        assert UINT.max_value() == 2 ** 32 - 1

    def test_wrap_signed(self):
        assert INT.wrap(2 ** 31) == -(2 ** 31)
        assert INT.wrap(-1) == -1
        assert CHAR.wrap(255) == -1

    def test_wrap_unsigned(self):
        assert UCHAR.wrap(256) == 0
        assert UCHAR.wrap(-1) == 255

    def test_predicates(self):
        assert INT.is_integer() and INT.is_scalar()
        assert DOUBLE.is_float() and not DOUBLE.is_integer()
        assert VOID.is_void()
        assert PointerType(INT).is_pointer()


class TestCompositeTypes:
    def test_array_size(self):
        assert ArrayType(INT, 10).size == 40
        assert ArrayType(DOUBLE, 3).align == 8

    def test_nested_array(self):
        a = ArrayType(ArrayType(INT, 4), 3)
        assert a.size == 48

    def test_function_type_str(self):
        f = FunctionType(INT, (DOUBLE, PointerType(CHAR)))
        assert "int" in str(f)

    def test_named_type_delegates(self):
        n = NamedType("myint", INT)
        assert n.size == 4
        assert n.is_integer()
        assert n.strip() is INT


def make_record(*specs):
    rec = RecordType("t")
    for name, t in specs:
        rec.add_field(Field(name, t))
    rec.layout()
    return rec


class TestRecordLayout:
    def test_simple_layout(self):
        rec = make_record(("a", INT), ("b", INT))
        assert rec.field("a").offset == 0
        assert rec.field("b").offset == 4
        assert rec.size == 8

    def test_padding_for_alignment(self):
        rec = make_record(("c", CHAR), ("d", DOUBLE))
        assert rec.field("c").offset == 0
        assert rec.field("d").offset == 8
        assert rec.size == 16

    def test_tail_padding(self):
        rec = make_record(("d", DOUBLE), ("c", CHAR))
        assert rec.size == 16    # rounded to 8

    def test_char_packing(self):
        rec = make_record(("a", CHAR), ("b", CHAR), ("c", CHAR))
        assert [rec.field(n).offset for n in "abc"] == [0, 1, 2]
        assert rec.size == 3

    def test_duplicate_field_raises(self):
        rec = RecordType("t")
        rec.add_field(Field("x", INT))
        with pytest.raises(TypeError_):
            rec.add_field(Field("x", LONG))

    def test_missing_field_raises(self):
        rec = make_record(("a", INT))
        with pytest.raises(TypeError_):
            rec.field("nope")

    def test_recursive_detection(self):
        rec = RecordType("node")
        rec.add_field(Field("next", PointerType(rec)))
        rec.layout()
        assert rec.is_recursive()

    def test_non_recursive(self):
        other = make_record(("x", INT))
        rec = make_record(("p", PointerType(other)))
        assert not rec.is_recursive()

    def test_nested_records(self):
        inner = make_record(("x", INT))
        outer = RecordType("outer")
        outer.add_field(Field("in_", inner))
        outer.add_field(Field("k", LONG))
        outer.layout()
        assert outer.nested_records() == [inner]
        assert outer.field("k").offset == 8

    def test_field_at_offset(self):
        rec = make_record(("a", INT), ("b", INT))
        assert rec.field_at_offset(0).name == "a"
        assert rec.field_at_offset(5).name == "b"
        assert rec.field_at_offset(100) is None

    def test_empty_record(self):
        rec = RecordType("e")
        rec.layout()
        assert rec.size == 0

    def test_definition_render(self):
        rec = make_record(("a", INT))
        assert "struct t" in rec.definition()
        assert "a" in rec.definition()


class TestBitfields:
    def test_bitfields_share_unit(self):
        rec = RecordType("b")
        rec.add_field(Field("x", INT, bit_width=3))
        rec.add_field(Field("y", INT, bit_width=5))
        rec.layout()
        assert rec.field("x").offset == rec.field("y").offset == 0
        assert rec.field("x").bit_offset == 0
        assert rec.field("y").bit_offset == 3
        assert rec.size == 4

    def test_bitfield_overflow_starts_new_unit(self):
        rec = RecordType("b")
        rec.add_field(Field("x", INT, bit_width=30))
        rec.add_field(Field("y", INT, bit_width=5))
        rec.layout()
        assert rec.field("y").offset == 4
        assert rec.field("y").bit_offset == 0

    def test_bitfield_then_plain_field(self):
        rec = RecordType("b")
        rec.add_field(Field("x", INT, bit_width=3))
        rec.add_field(Field("y", INT))
        rec.layout()
        assert rec.field("y").offset == 4

    def test_too_wide_bitfield_raises(self):
        rec = RecordType("b")
        rec.add_field(Field("x", INT, bit_width=40))
        with pytest.raises(TypeError_):
            rec.layout()

    def test_float_bitfield_raises(self):
        rec = RecordType("b")
        rec.add_field(Field("x", DOUBLE, bit_width=4))
        with pytest.raises(TypeError_):
            rec.layout()

    def test_has_bitfields(self):
        rec = RecordType("b")
        rec.add_field(Field("x", INT, bit_width=2))
        assert rec.has_bitfields()


class TestCommonType:
    def test_float_beats_int(self):
        assert common_arithmetic_type(INT, DOUBLE) is DOUBLE

    def test_wider_wins(self):
        assert common_arithmetic_type(INT, LONG) is LONG

    def test_small_ints_promote(self):
        assert common_arithmetic_type(CHAR, SHORT) is INT

    def test_unsigned_wins_at_equal_width(self):
        assert common_arithmetic_type(INT, UINT) is UINT

    def test_pointer_passes_through(self):
        p = pointer_to(INT)
        assert common_arithmetic_type(p, LONG) is p


# ---------------------------------------------------------------------------
# Property-based layout invariants
# ---------------------------------------------------------------------------

_SCALARS = [CHAR, SHORT, INT, UINT, LONG, ULONG, FLOAT, DOUBLE]

field_lists = st.lists(
    st.sampled_from(_SCALARS), min_size=1, max_size=12)


@given(field_lists)
def test_layout_offsets_are_aligned(types):
    rec = make_record(*((f"f{i}", t) for i, t in enumerate(types)))
    for f in rec.fields:
        assert f.offset % f.type.align == 0


@given(field_lists)
def test_layout_fields_do_not_overlap(types):
    rec = make_record(*((f"f{i}", t) for i, t in enumerate(types)))
    spans = sorted((f.offset, f.offset + f.type.size) for f in rec.fields)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


@given(field_lists)
def test_layout_size_covers_fields_and_respects_align(types):
    rec = make_record(*((f"f{i}", t) for i, t in enumerate(types)))
    end = max(f.offset + f.type.size for f in rec.fields)
    assert rec.size >= end
    assert rec.size % rec.align == 0
    assert rec.align == max(t.align for t in types)


@given(field_lists, st.randoms())
def test_layout_size_invariant_under_reorder_of_same_sized(types, rng):
    """Reordering fields never changes which fields exist, and the sum
    of field sizes is a lower bound of the struct size."""
    rec = make_record(*((f"f{i}", t) for i, t in enumerate(types)))
    assert rec.size >= sum(t.size for t in types) - 0
    shuffled = list(enumerate(types))
    rng.shuffle(shuffled)
    rec2 = make_record(*((f"f{i}", t) for i, t in shuffled))
    assert {f.name for f in rec2.fields} == {f.name for f in rec.fields}


@given(st.lists(st.integers(min_value=1, max_value=31), min_size=1,
                max_size=20))
def test_bitfields_never_overlap(widths):
    rec = RecordType("bf")
    for i, w in enumerate(widths):
        rec.add_field(Field(f"b{i}", INT, bit_width=w))
    rec.layout()
    taken: set[tuple[int, int]] = set()
    for f in rec.fields:
        for bit in range(f.bit_offset, f.bit_offset + f.bit_width):
            key = (f.offset, bit)
            assert key not in taken
            taken.add(key)
        assert f.bit_offset + f.bit_width <= 32
