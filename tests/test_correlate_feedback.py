"""Correlation math and feedback-file tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.frontend import Program
from repro.ir import lower_program
from repro.profit import (
    pearson, correlation, correlation_prime,
    FeedbackFile, FeedbackMismatch, collect_feedback,
    sample_uninstrumented, match_feedback, cfg_checksum,
)


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_no_correlation_constant(self):
        assert pearson([1, 2, 3], [5, 5, 5]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_short_vectors(self):
        assert pearson([1], [2]) == 0.0

    def test_correlation_over_dicts(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        b = {"x": 2.0, "y": 4.0, "z": 6.0, "extra": 9.0}
        assert correlation(a, b) == pytest.approx(1.0)

    def test_correlation_prime_drops_dominant(self):
        base = {"big": 100.0, "a": 1.0, "b": 2.0, "c": 3.0}
        other = {"big": 100.0, "a": 3.0, "b": 2.0, "c": 1.0}
        r = correlation(base, other)
        r_prime = correlation_prime(base, other)
        assert r > 0.9            # the spike dominates
        assert r_prime < 0.0      # without it, anticorrelated

    def test_correlation_prime_explicit_field(self):
        base = {"p": 50.0, "q": 1.0, "r": 2.0}
        other = {"p": 50.0, "q": 1.0, "r": 2.0}
        assert correlation_prime(base, other, dominant="p") == \
            pytest.approx(1.0)


@given(st.lists(st.floats(-1e6, 1e6).map(lambda v: round(v, 3)),
                min_size=2, max_size=30),
       st.floats(0.1, 100.0), st.floats(-50.0, 50.0))
def test_pearson_scale_invariant(xs, scale, shift):
    ys = [x * scale + shift for x in xs]
    r = pearson(xs, ys)
    if max(xs) - min(xs) > 1e-3:      # non-degenerate spread
        assert r == pytest.approx(1.0, abs=1e-6)


@given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                min_size=2, max_size=30))
def test_pearson_symmetric_and_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    r1 = pearson(xs, ys)
    r2 = pearson(ys, xs)
    assert r1 == pytest.approx(r2)
    assert -1.0 - 1e-9 <= r1 <= 1.0 + 1e-9
    assert not math.isnan(r1)


SRC = """
struct t { long hot; long cold; };
struct t *g;
int main() {
    int i; int it; long s = 0;
    g = (struct t*) malloc(200 * sizeof(struct t));
    for (it = 0; it < 10; it++)
        for (i = 0; i < 200; i++)
            s += g[i].hot;
    for (i = 0; i < 200; i++) s += g[i].cold;
    printf("%ld", s);
    return 0;
}
"""


class TestFeedback:
    def test_collection_has_edges_and_samples(self):
        p = Program.from_source(SRC)
        fb = collect_feedback(p, pmu_period=4)
        assert fb.edge_counts
        assert fb.field_samples
        assert fb.input_label == "train"

    def test_json_roundtrip(self, tmp_path):
        p = Program.from_source(SRC)
        fb = collect_feedback(p)
        path = tmp_path / "prof.json"
        fb.save(path)
        fb2 = FeedbackFile.load(path)
        assert fb2.edge_counts == fb.edge_counts
        assert fb2.checksums == fb.checksums
        assert set(fb2.field_samples) == set(fb.field_samples)

    def test_match_produces_weights(self):
        p = Program.from_source(SRC)
        cfgs = lower_program(p)
        fb = collect_feedback(p, cfgs=cfgs)
        pw = match_feedback(cfgs, fb)
        assert pw.scheme == "PBO"
        assert any(c > 0 for c in pw.functions["main"].block.values())

    def test_stale_feedback_rejected(self):
        p1 = Program.from_source(SRC)
        fb = collect_feedback(p1)
        # a structural CFG change (extra branch) invalidates the profile
        p2 = Program.from_source(SRC.replace(
            "s += g[i].hot;",
            "if (i & 1) s += g[i].hot; else s -= 1;"))
        cfgs2 = lower_program(p2)
        with pytest.raises(FeedbackMismatch):
            match_feedback(cfgs2, fb)

    def test_missing_function_rejected(self):
        p = Program.from_source(SRC)
        fb = FeedbackFile()
        with pytest.raises(FeedbackMismatch):
            match_feedback(lower_program(p), fb)

    def test_non_strict_match_skips_checks(self):
        p = Program.from_source(SRC)
        fb = FeedbackFile()
        pw = match_feedback(lower_program(p), fb, strict=False)
        assert pw.functions["main"].block

    def test_checksum_stable(self):
        p1 = Program.from_source(SRC)
        p2 = Program.from_source(SRC)
        c1 = cfg_checksum(lower_program(p1)["main"])
        c2 = cfg_checksum(lower_program(p2)["main"])
        assert c1 == c2

    def test_hot_field_has_more_samples(self):
        p = Program.from_source(SRC)
        fb = collect_feedback(p, pmu_period=4)
        hot = fb.field_samples.get(("t", "hot"))
        cold = fb.field_samples.get(("t", "cold"))
        assert hot is not None
        assert hot.accesses > (cold.accesses if cold else 0)

    def test_dmiss_dlat_views(self):
        p = Program.from_source(SRC)
        fb = collect_feedback(p, pmu_period=4)
        dm = fb.dmiss_for("t")
        dl = fb.dlat_for("t")
        assert set(dm) <= {"hot", "cold"}
        assert all(v >= 0 for v in dm.values())
        assert all(v >= 0 for v in dl.values())

    def test_uninstrumented_sampling_close_to_instrumented(self):
        """DMISS vs DMISS.NO: instrumentation barely perturbs sampling
        (the paper reports correlation 0.996)."""
        from repro.profit import correlation as corr
        p1 = Program.from_source(SRC)
        fb_i = collect_feedback(p1, pmu_period=4)
        p2 = Program.from_source(SRC)
        fb_n = sample_uninstrumented(p2, pmu_period=4)
        a = fb_i.dmiss_for("t")
        b = fb_n.dmiss_for("t")
        keys = set(a) & set(b)
        if len(keys) >= 2:
            assert corr({k: a[k] for k in keys},
                        {k: b[k] for k in keys}) > 0.9

    def test_instrumented_run_is_slower(self):
        p1 = Program.from_source(SRC)
        fb_i = collect_feedback(p1)
        p2 = Program.from_source(SRC)
        fb_n = sample_uninstrumented(p2, pmu_period=16)
        assert fb_i.instrumented_cycles > fb_n.instrumented_cycles
