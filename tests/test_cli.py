"""CLI tests (the §5 standalone tool)."""

import pytest

from repro.cli import main, build_parser

DEMO = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestAnalyze:
    def test_reports_legality_and_plan(self, demo_file, capsys):
        assert main(["analyze", demo_file]) == 0
        out = capsys.readouterr().out
        assert "record types: 1" in out
        assert "item" in out
        assert "plan=peel" in out

    def test_relax_flag(self, demo_file, capsys):
        assert main(["analyze", "--relax", demo_file]) == 0

    def test_scheme_flag(self, demo_file, capsys):
        assert main(["analyze", "--scheme", "SPBO", demo_file]) == 0

    def test_bad_scheme_rejected(self, demo_file):
        with pytest.raises(SystemExit):
            main(["analyze", "--scheme", "MAGIC", demo_file])


class TestRun:
    def test_executes_and_reports_cycles(self, demo_file, capsys):
        assert main(["run", demo_file]) == 0
        out = capsys.readouterr().out
        assert "s=" in out
        assert "cycles]" in out

    def test_stats_flag(self, demo_file, capsys):
        main(["run", "--stats", demo_file])
        out = capsys.readouterr().out
        assert "L1D" in out

    def test_exit_code_propagates(self, tmp_path, capsys):
        p = tmp_path / "f.c"
        p.write_text("int main() { return 3; }")
        assert main(["run", str(p)]) == 3


class TestTransform:
    def test_emits_source_to_stdout(self, demo_file, capsys):
        assert main(["transform", demo_file]) == 0
        out = capsys.readouterr().out
        assert "struct item__p0" in out
        assert "malloc" in out

    def test_output_file(self, demo_file, tmp_path, capsys):
        out_file = tmp_path / "out.c"
        assert main(["transform", demo_file, "-o", str(out_file)]) == 0
        assert "struct item__p0" in out_file.read_text()

    def test_transformed_source_recompiles(self, demo_file, tmp_path,
                                           capsys):
        out_file = tmp_path / "out.c"
        main(["transform", demo_file, "-o", str(out_file)])
        capsys.readouterr()
        assert main(["run", str(out_file)]) == 0
        assert "s=" in capsys.readouterr().out

    def test_peel_mode_flag(self, demo_file, capsys):
        # no cold fields here, so hot-cold grouping degenerates to a
        # single piece: the framework falls back to dead-field removal
        assert main(["transform", "--peel-mode", "hot-cold",
                     demo_file]) == 0
        out = capsys.readouterr().out
        assert "struct item" in out
        assert "double dead;" not in out

    def test_ts_flag_changes_split(self, demo_file, capsys):
        assert main(["transform", "--ts", "0.0001", demo_file]) == 0


class TestCompare:
    def test_reports_effect(self, demo_file, capsys):
        assert main(["compare", demo_file]) == 0
        out = capsys.readouterr().out
        assert "effect   :" in out
        assert "item" in out


class TestAdvise:
    def test_report_printed(self, demo_file, capsys):
        assert main(["advise", demo_file]) == 0
        out = capsys.readouterr().out
        assert "Type     : item" in out
        assert "scenario advice" in out

    def test_profile_mode(self, demo_file, capsys):
        assert main(["advise", "--profile", demo_file]) == 0
        out = capsys.readouterr().out
        assert "miss :" in out

    def test_vcg_output(self, demo_file, tmp_path, capsys):
        vcg = tmp_path / "g.vcg"
        assert main(["advise", demo_file, "--vcg", str(vcg)]) == 0
        assert vcg.read_text().startswith("graph: {")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_multi_file_program(self, tmp_path, capsys):
        a = tmp_path / "a.c"
        b = tmp_path / "b.c"
        a.write_text("struct s { long v; }; struct s *g;\n"
                     "long touch(void);\n"
                     "int main() { g = (struct s*) malloc(8 * "
                     "sizeof(struct s)); g[0].v = touch(); "
                     "printf(\"%ld\", g[0].v); return 0; }")
        b.write_text("long touch(void) { return 42; }")
        assert main(["run", str(a), str(b)]) == 0
        assert "42" in capsys.readouterr().out


class TestAdviseMT:
    def test_mt_flag(self, demo_file, capsys):
        assert main(["advise", "--mt", demo_file]) == 0
        out = capsys.readouterr().out
        assert "Multi-threaded layout advice" in out
