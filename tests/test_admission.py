"""Overload-control tests: token buckets, the weighted fair queue
(DRR rotation, priority lanes, push-out displacement), the admission
controller's verdicts and honest retry_after hints, end-to-end
deadline propagation through a live daemon, and the client side of
server-provided backoff hints."""

from __future__ import annotations

import os
import tempfile
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import ApiError, CompileRequest
from repro.service import (
    CompileServer, ServiceClient, Supervisor, SupervisorConfig,
    single_request, wait_ready,
)
from repro.service.admission import (
    ADMIT, ANON_TENANT, AdmissionController, EVICT_EXPIRED, FairQueue,
    PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, QueueItem,
    REJECT_HOPELESS, REJECT_QUEUE_FULL, REJECT_QUOTA,
    ServiceTimeTracker, TokenBucket, coerce_priority,
)

SRC = "int main() { return 0; }\n"


class Clock:
    """Scripted monotonic clock for deterministic time tests."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def item(tenant: str, priority: int = PRIORITY_NORMAL, op: str = "analyze",
         tag: str = "", **kw) -> QueueItem:
    return QueueItem(tenant=tenant, priority=priority, op=op,
                     payload=tag or tenant, **kw)


# ---------------------------------------------------------------------------
# coerce_priority
# ---------------------------------------------------------------------------

class TestCoercePriority:
    def test_names_and_ints(self):
        assert coerce_priority("high") == PRIORITY_HIGH
        assert coerce_priority("NORMAL") == PRIORITY_NORMAL
        assert coerce_priority("low") == PRIORITY_LOW
        assert coerce_priority(0) == 0
        assert coerce_priority(2) == 2

    def test_rejects_garbage(self):
        for bad in ("urgent", 3, -1, True, 1.5, None):
            with pytest.raises(ValueError):
                coerce_priority(bad)


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_disabled_bucket_always_admits(self):
        clk = Clock()
        b = TokenBucket(0.0, 8.0, clock=clk)
        for _ in range(1000):
            assert b.try_take()
        assert b.retry_after() == 0.0

    def test_burst_then_refill(self):
        clk = Clock()
        b = TokenBucket(2.0, 4.0, clock=clk)     # 2/s, burst 4
        assert all(b.try_take() for _ in range(4))
        assert not b.try_take()
        # the hint is the honest time to one token: 0.5s at 2/s
        assert b.retry_after() == pytest.approx(0.5)
        clk.advance(0.5)
        assert b.try_take()
        assert not b.try_take()
        clk.advance(10.0)                        # refills cap at burst
        assert all(b.try_take() for _ in range(4))
        assert not b.try_take()


# ---------------------------------------------------------------------------
# FairQueue
# ---------------------------------------------------------------------------

class TestFairQueue:
    def test_fifo_within_one_tenant(self):
        q = FairQueue(8, clock=Clock())
        for i in range(4):
            admitted, _ = q.put(item("a", tag=f"a{i}"))
            assert admitted
        got = [q.get(timeout=0).payload for _ in range(4)]
        assert got == ["a0", "a1", "a2", "a3"]
        assert q.get(timeout=0) is None

    def test_priority_lanes_strict_within_tenant(self):
        q = FairQueue(8, clock=Clock())
        q.put(item("a", PRIORITY_LOW, tag="low"))
        q.put(item("a", PRIORITY_NORMAL, tag="norm"))
        q.put(item("a", PRIORITY_HIGH, tag="high"))
        got = [q.get(timeout=0).payload for _ in range(3)]
        assert got == ["high", "norm", "low"]

    def test_drr_interleaves_tenants(self):
        """A tenant with 6 queued items cannot starve one with 2:
        equal weights dequeue round-robin."""
        q = FairQueue(16, clock=Clock())
        for i in range(6):
            q.put(item("flood", tag=f"f{i}"))
        for i in range(2):
            q.put(item("nice", tag=f"n{i}"))
        order = [q.get(timeout=0).payload for _ in range(8)]
        # both of nice's items are served within the first four turns
        assert set(order[:4]) >= {"n0", "n1"}

    def test_drr_respects_weights(self):
        """weight 2 tenant gets ~2x the service of a weight 1 tenant."""
        q = FairQueue(32, weights={"heavy": 2.0, "light": 1.0},
                      clock=Clock())
        for i in range(9):
            q.put(item("heavy", tag=f"h{i}"))
        for i in range(9):
            q.put(item("light", tag=f"l{i}"))
        first9 = [q.get(timeout=0).payload for _ in range(9)]
        heavy = sum(1 for p in first9 if p.startswith("h"))
        assert heavy >= 5                          # ~2:1 split
        # everything still drains
        rest = [q.get(timeout=0) for _ in range(9)]
        assert all(r is not None for r in rest)

    def test_capacity_bound_and_extra_occupancy(self):
        q = FairQueue(3, clock=Clock())
        assert q.put(item("a"))[0]
        # two slots are held by in-dispatch requests: queue is full
        admitted, displaced = q.put(item("a"), extra_occupancy=2)
        assert not admitted and displaced is None

    def test_displacement_sheds_the_flooder_not_the_victim(self):
        q = FairQueue(4, clock=Clock())
        for i in range(4):
            assert q.put(item("flood", tag=f"f{i}"))[0]
        # fair share is 4/2 = 2; "nice" holds 0 < 2, flood holds 4 > 2
        admitted, victim = q.put(item("nice", PRIORITY_HIGH, tag="n0"))
        assert admitted
        assert victim is not None and victim.tenant == "flood"
        assert victim.payload == "f3"      # newest lowest-priority item
        assert q.depth() == 4

    def test_over_share_arrival_is_shed_not_displacing(self):
        q = FairQueue(4, clock=Clock())
        for i in range(2):
            q.put(item("a", tag=f"a{i}"))
        for i in range(2):
            q.put(item("b", tag=f"b{i}"))
        # both tenants sit exactly at fair share (2): no displacement
        admitted, victim = q.put(item("a", tag="a2"))
        assert not admitted and victim is None

    def test_displacement_prefers_low_priority_victim(self):
        q = FairQueue(4, clock=Clock())
        q.put(item("flood", PRIORITY_HIGH, tag="fh0"))
        q.put(item("flood", PRIORITY_HIGH, tag="fh1"))
        q.put(item("flood", PRIORITY_LOW, tag="fl0"))
        q.put(item("flood", PRIORITY_LOW, tag="fl1"))
        _, victim = q.put(item("nice", tag="n0"))
        assert victim is not None and victim.payload == "fl1"

    def test_drain_returns_everything_pending(self):
        q = FairQueue(8, clock=Clock())
        for t in ("a", "b", "a"):
            q.put(item(t))
        drained = q.drain()
        assert len(drained) == 3
        assert q.depth() == 0
        assert q.get(timeout=0) is None

    def test_oldest_age_tracks_enqueue_time(self):
        clk = Clock()
        q = FairQueue(8, clock=clk)
        assert q.oldest_age_s() is None
        q.put(item("a", enqueued_at=clk()))
        clk.advance(2.5)
        q.put(item("b", enqueued_at=clk()))
        assert q.oldest_age_s() == pytest.approx(2.5)

    def test_get_blocks_until_put(self):
        q = FairQueue(8)
        out = []

        def consumer():
            out.append(q.get(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.put(item("a", tag="woken"))
        t.join(timeout=5.0)
        assert out and out[0].payload == "woken"


# ---------------------------------------------------------------------------
# ServiceTimeTracker
# ---------------------------------------------------------------------------

class TestServiceTimeTracker:
    def test_p50_needs_sample_floor(self):
        st = ServiceTimeTracker(min_samples=5)
        for _ in range(4):
            st.observe("analyze", 0.1)
        assert st.p50("analyze") is None           # no honest estimate
        st.observe("analyze", 0.1)
        assert st.p50("analyze") == pytest.approx(0.1)

    def test_p50_is_the_median(self):
        st = ServiceTimeTracker(min_samples=5)
        for s in (0.1, 0.2, 0.3, 0.4, 10.0):
            st.observe("advise", s)
        assert st.p50("advise") == pytest.approx(0.3)
        assert "advise" in st.snapshot()


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------

class TestAdmissionController:
    def test_quota_rejection_with_honest_hint(self):
        clk = Clock()
        ac = AdmissionController(8, tenant_rate=1.0, tenant_burst=2.0,
                                 clock=clk)
        assert ac.offer(item("a")).admitted
        assert ac.offer(item("a")).admitted
        d = ac.offer(item("a"))
        assert d.verdict == REJECT_QUOTA
        assert d.retry_after == pytest.approx(1.0)  # 1 token at 1/s
        # another tenant is unaffected
        assert ac.offer(item("b")).admitted

    def test_hopeless_rejection_uses_observed_p50(self):
        clk = Clock()
        ac = AdmissionController(8, clock=clk)
        # below the sample floor nothing is hopeless
        assert ac.offer(item("a"), budget_s=0.001).admitted
        for _ in range(5):
            ac.note_completed(item("a"), service_s=0.5)
            clk.advance(0.1)
        d = ac.offer(item("a"), budget_s=0.2)      # 0.2 < p50 0.5
        assert d.verdict == REJECT_HOPELESS
        assert ac.offer(item("a"), budget_s=2.0).admitted
        # no budget at all is always hopeless
        assert ac.offer(item("a"), budget_s=0.0).verdict \
            == REJECT_HOPELESS

    def test_queue_full_hint_tracks_drain_rate(self):
        clk = Clock()
        ac = AdmissionController(4, clock=clk)
        for _ in range(4):
            assert ac.offer(item("a")).admitted
        # drain two at ~2/s so the EWMA has a real rate
        for _ in range(8):
            taken = ac.take(timeout=0)
            clk.advance(0.5)
            ac.note_completed(taken, service_s=0.4)
            ac.offer(item("a"))
        d = ac.offer(item("a"))
        assert d.verdict == REJECT_QUEUE_FULL
        # 4 queued at ~2/s -> ~2s, clamped to [0.1, 30]
        assert 0.1 <= d.retry_after <= 30.0
        assert d.retry_after == pytest.approx(
            ac.queue.depth() / ac.drain_rate(), rel=0.5)

    def test_fairness_block_shape(self):
        clk = Clock()
        ac = AdmissionController(8, tenant_rate=100.0, clock=clk)
        ac.offer(item("a"))
        taken = ac.take(timeout=0)
        clk.advance(0.05)
        ac.note_completed(taken, service_s=0.05)
        ac.offer(item("b"))
        expired = item("c")
        ac.evict_expired(expired)
        fb = ac.fairness()
        assert fb["queue_depth"] == 1
        assert fb["queue_capacity"] == 8
        assert fb["oldest_age_s"] is not None
        assert fb["tenants"]["a"]["completed"] == 1
        assert fb["tenants"]["b"]["queued"] == 1
        assert fb["tenants"]["c"]["deadline_evicted"] == 1

    def test_displacement_counts_against_the_flooder(self):
        ac = AdmissionController(2, clock=Clock())
        ac.offer(item("flood"))
        ac.offer(item("flood"))
        d = ac.offer(item("nice"))
        assert d.admitted and d.displaced is not None
        fb = ac.fairness()
        assert fb["tenants"]["flood"]["shed"] == 1
        assert fb["tenants"]["nice"]["admitted"] == 1


# ---------------------------------------------------------------------------
# Wire-level: CompileRequest carries tenant / priority / deadline_ms
# ---------------------------------------------------------------------------

class TestWireFields:
    def test_roundtrip(self):
        req = CompileRequest(op="analyze", sources=[("a.c", SRC)],
                             tenant="acme", priority=PRIORITY_HIGH,
                             deadline_ms=750.0)
        wire = req.to_wire()
        assert wire["tenant"] == "acme"
        assert wire["priority"] == PRIORITY_HIGH
        assert wire["deadline_ms"] == 750.0
        back = CompileRequest.from_dict(wire)
        assert (back.tenant, back.priority, back.deadline_ms) \
            == ("acme", PRIORITY_HIGH, 750.0)

    def test_defaults_stay_off_the_wire(self):
        wire = CompileRequest(op="analyze",
                              sources=[("a.c", SRC)]).to_wire()
        assert "tenant" not in wire
        assert "priority" not in wire
        assert "deadline_ms" not in wire

    def test_validation(self):
        with pytest.raises(ApiError):
            CompileRequest.from_dict(
                {"op": "analyze", "sources": [["a.c", SRC]],
                 "deadline_ms": -5})
        with pytest.raises(ApiError):
            CompileRequest.from_dict(
                {"op": "analyze", "sources": [["a.c", SRC]],
                 "priority": "urgent"})
        with pytest.raises(ApiError):
            CompileRequest.from_dict(
                {"op": "analyze", "sources": [["a.c", SRC]],
                 "tenant": ""})


# ---------------------------------------------------------------------------
# Live daemon integration
# ---------------------------------------------------------------------------

@contextmanager
def service(queue_max: int = 8, tenant_rate: float = 0.0,
            tenant_burst: float = 8.0, **cfg_kw):
    tmp = tempfile.mkdtemp(prefix="repro-adm-")
    cfg_kw.setdefault("pool_size", 1)
    cfg_kw.setdefault("deadline", 60.0)
    cfg_kw.setdefault("cache_dir", os.path.join(tmp, "cache"))
    supervisor = Supervisor(SupervisorConfig(**cfg_kw))
    sock = os.path.join(tmp, "repro.sock")
    server = CompileServer(sock, supervisor, queue_max=queue_max,
                           tenant_rate=tenant_rate,
                           tenant_burst=tenant_burst)
    server.start()
    assert wait_ready(sock, timeout=30), "daemon failed to become ready"
    try:
        yield sock, server, supervisor
    finally:
        server.shutdown()


def wire(op: str = "analyze", **extra) -> dict:
    return {"id": 1, "op": op, "sources": [["a.c", SRC]], **extra}


class TestServerAdmission:
    def test_quota_rejected_status(self):
        with service(tenant_rate=0.001, tenant_burst=1.0) as (sock, _, _):
            ok = single_request(sock, wire(tenant="greedy"))
            assert ok["status"] in ("ok", "degraded")
            rej = single_request(sock, wire(tenant="greedy"))
            assert rej["status"] == "rejected"
            assert rej["error"]["reason"] == "quota"
            assert rej["retry_after"] > 0
            # a different tenant still gets service
            other = single_request(sock, wire(tenant="patient"))
            assert other["status"] in ("ok", "degraded")

    def test_short_budget_is_deadline_exceeded(self):
        """A 50ms budget is under the supervisor's deadline margin:
        the request must come back deadline_exceeded, never burn a
        worker, and never be failed over as an error."""
        with service() as (sock, _, _):
            resp = single_request(sock, wire(deadline_ms=50.0))
            assert resp["status"] == "deadline_exceeded"
            assert resp["error"]["reason"] in (
                "budget_exhausted", "expired_in_queue", "hopeless")

    def test_generous_budget_is_served(self):
        with service() as (sock, _, _):
            resp = single_request(
                sock, wire(tenant="acme", priority="high",
                           deadline_ms=60_000.0))
            assert resp["status"] in ("ok", "degraded")

    def test_stats_has_fairness_and_queue_depth(self):
        with service() as (sock, _, _):
            single_request(sock, wire(tenant="acme"))
            stats = single_request(sock, {"op": "stats"})["stats"]
            srv = stats["server"]
            assert srv["queue_depth"] == 0
            assert "oldest_age_s" in srv
            assert "deadline_refused" in srv
            fb = stats["fairness"]
            assert fb["queue_depth"] == 0
            assert fb["tenants"]["acme"]["completed"] >= 1

    def test_bad_priority_is_a_protocol_error(self):
        with service() as (sock, _, _):
            resp = single_request(sock, wire(priority="urgent"))
            assert resp["status"] == "error"


class TestClientRetryHints:
    def test_backoff_consumes_server_hint_once(self):
        c = ServiceClient("/nonexistent", jitter_seed=7,
                          retry_after_cap=2.0)
        c._retry_hint = 0.25
        assert c._backoff(0) == 0.25
        # consumed: next backoff falls back to the jittered default
        assert c._backoff(0) <= c.backoff_base
        c._retry_hint = 99.0                     # capped
        assert c._backoff(0) == 2.0

    def test_retry_busy_resends_after_rejected(self):
        """With retry_busy set, a quota rejection is retried after the
        server's hint and eventually succeeds."""
        with service(tenant_rate=2.0, tenant_burst=1.0) as (sock, _, _):
            with ServiceClient(sock, timeout=60.0, retry_busy=3,
                               retry_after_cap=2.0) as c:
                first = c.request(wire(tenant="t"))
                assert first["status"] in ("ok", "degraded")
                second = c.request(wire(tenant="t"))
                # burst of 1 at 2/s: the immediate follow-up is
                # rejected, the hint (~0.5s) is slept, the resend lands
                assert second["status"] in ("ok", "degraded")

    def test_without_retry_busy_rejection_is_returned(self):
        with service(tenant_rate=0.001, tenant_burst=1.0) as (sock, _, _):
            with ServiceClient(sock, timeout=60.0) as c:
                assert c.request(wire(tenant="t"))["status"] \
                    in ("ok", "degraded")
                assert c.request(wire(tenant="t"))["status"] \
                    == "rejected"
