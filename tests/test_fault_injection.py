"""Fault-injection harness: every single-point pass failure must be
contained.

Each test arms the global :data:`repro.core.FAULTS` registry (via the
``inject_fault`` context manager) so that one named pass crashes,
stalls past its wall-clock budget, or returns a corrupted summary, then
asserts that compilation still yields a complete
:class:`CompilationResult` whose transformed program is
output-equivalent to the original, with a diagnostic naming the
failure."""

import pytest

from repro.core import (
    CODE_BUDGET, CODE_CONTAINED, CODE_CORRUPT, CODE_ROLLBACK,
    CompilerOptions, FatalCompilerError, FAULTS, INJECTABLE_PASSES,
    FaultSpec, InjectedFault, compile_program, compile_source,
    inject_fault,
)
from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import HeuristicParams
from repro.workloads import ALL_WORKLOADS, MCF

DEMO = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""

# the ISSUE's acceptance list: every pass here must be containable
FAULT_PASSES = ["legality", "deadfields", "escape", "pointsto",
                "profiles", "heuristics"]


def _options(pass_name, **kw):
    # points-to only runs when legality relaxation is requested
    return CompilerOptions(relax_legality=(pass_name == "pointsto"),
                           **kw)


def _assert_equivalent(res):
    before = run_program(res.program)
    after = run_program(res.transformed)
    assert before.stdout == after.stdout
    assert before.exit_code == after.exit_code


class TestRegistry:
    def test_inject_fault_arms_and_disarms(self):
        assert FAULTS.spec("legality") is None
        with inject_fault("legality", "raise") as spec:
            assert isinstance(spec, FaultSpec)
            assert FAULTS.spec("legality") is spec
        assert FAULTS.spec("legality") is None

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("frobnicate", "raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("legality", "explode")

    def test_fired_counts(self):
        with inject_fault("legality", "raise") as spec:
            compile_source(DEMO)
        assert spec.fired == 1

    def test_all_issue_passes_injectable(self):
        for name in FAULT_PASSES:
            assert name in INJECTABLE_PASSES


class TestCrashContainment:
    @pytest.mark.parametrize("pass_name", FAULT_PASSES)
    def test_pass_crash_is_contained(self, pass_name):
        with inject_fault(pass_name, "raise") as spec:
            res = compile_source(DEMO, _options(pass_name))
        assert spec.fired >= 1
        assert res.transformed is not None
        contained = res.diagnostics.contained()
        assert any(d.phase == pass_name for d in contained), \
            res.diagnostics.render()
        _assert_equivalent(res)

    def test_clean_compile_has_no_fault_diagnostics(self):
        res = compile_source(DEMO)
        assert res.diagnostics.contained() == []
        assert res.rolled_back == []
        assert res.transformed_types()          # still optimizes

    def test_crash_outside_registry_also_contained(self):
        """Containment guards real bugs, not just injected ones."""
        res = compile_source(
            DEMO, CompilerOptions(pointsto_max_sweeps=10_000,
                                  relax_legality=True))
        assert res.transformed is not None

    def test_strict_mode_promotes_to_fatal(self):
        with inject_fault("legality", "raise"):
            with pytest.raises(FatalCompilerError) as exc:
                compile_source(DEMO, CompilerOptions(strict=True))
        assert exc.value.phase == "legality"


class TestBudgetContainment:
    @pytest.mark.parametrize("pass_name", FAULT_PASSES)
    def test_stall_past_budget_is_contained(self, pass_name):
        opts = _options(pass_name, phase_budget=0.02)
        with inject_fault(pass_name, "stall", seconds=0.15):
            res = compile_source(DEMO, opts)
        assert res.transformed is not None
        budget = res.diagnostics.by_code(CODE_BUDGET)
        assert any(d.phase == pass_name for d in budget), \
            res.diagnostics.render()
        _assert_equivalent(res)

    def test_pointsto_iteration_cap(self):
        res = compile_source(
            DEMO, CompilerOptions(relax_legality=True,
                                  pointsto_max_sweeps=1))
        assert res.transformed is not None
        assert any(d.phase == "pointsto"
                   for d in res.diagnostics.contained())
        _assert_equivalent(res)

    def test_no_budget_means_no_overrun(self):
        with inject_fault("legality", "stall", seconds=0.01):
            res = compile_source(DEMO)
        assert res.diagnostics.by_code(CODE_BUDGET) == []


class TestCorruptSummaries:
    def test_corrupt_profiles_detected_structurally(self):
        """NaN hotness counts fail validation; the profile is dropped."""
        with inject_fault("profiles", "corrupt"):
            res = compile_source(DEMO)
        assert res.diagnostics.by_code(CODE_CORRUPT), \
            res.diagnostics.render()
        _assert_equivalent(res)

    def test_corrupt_deadfields_caught_at_apply(self):
        """A summary that wrongly marks live fields dead must not make
        it into emitted code."""
        with inject_fault("deadfields", "corrupt"):
            res = compile_source(DEMO)
        assert res.diagnostics.contained() or res.rolled_back
        _assert_equivalent(res)

    def test_corrupt_heuristics_caught(self):
        with inject_fault("heuristics", "corrupt"):
            res = compile_source(DEMO)
        _assert_equivalent(res)


# A program whose layout is observable through a raw pointer cast:
# raw[2] reads field ``c``'s slot, so splitting c/d out changes the
# answer.  Legality correctly flags the cast (CSTF); corrupting the
# legality summary erases that flag and lets the bad split through.
CSTF_TRAP = """
struct pt { long a; long b; long c; long d; };
struct pt *P;
int main() {
    long *raw; long s = 0; int i; int it;
    P = (struct pt*) malloc(16 * sizeof(struct pt));
    for (i = 0; i < 16; i++) {
        P[i].a = i; P[i].b = 2 * i; P[i].c = 100 + i; P[i].d = 200 + i;
    }
    for (it = 0; it < 20; it++)
        for (i = 0; i < 16; i++) s += P[i].a + P[i].b;
    for (i = 0; i < 16; i++) s += P[i].c - P[i].d;
    raw = (long *) P;
    s += raw[2];
    printf("s=%ld\\n", s);
    return 0;
}
"""

# c/d sit at ~24% relative hotness; a 30% threshold makes them cold
_TRAP_PARAMS = HeuristicParams(ts_static=30.0)


class TestDifferentialRollback:
    def test_unverified_corruption_breaks_output(self):
        """Sanity: without verification the corrupted compile really
        does emit a wrong program (otherwise the rollback test below
        proves nothing)."""
        with inject_fault("legality", "corrupt"):
            res = compile_source(
                CSTF_TRAP,
                CompilerOptions(verify_transforms=False,
                                params=_TRAP_PARAMS))
        assert [d.action for d in res.transformed_types()] == ["split"]
        before = run_program(res.program)
        after = run_program(res.transformed)
        assert before.stdout != after.stdout

    def test_broken_transform_rolled_back(self):
        with inject_fault("legality", "corrupt"):
            res = compile_source(
                CSTF_TRAP,
                CompilerOptions(verify_transforms=True,
                                params=_TRAP_PARAMS))
        assert res.rolled_back == ["pt"]
        assert res.diagnostics.rollbacks()
        assert res.transformed_types() == []
        _assert_equivalent(res)

    def test_rollback_strict_raises(self):
        with inject_fault("legality", "corrupt"):
            with pytest.raises(FatalCompilerError):
                compile_source(
                    CSTF_TRAP,
                    CompilerOptions(verify_transforms=True, strict=True,
                                    params=_TRAP_PARAMS))

    def test_verification_keeps_good_transforms(self):
        res = compile_source(
            DEMO, CompilerOptions(verify_transforms=True))
        assert res.rolled_back == []
        assert res.transformed_types()
        _assert_equivalent(res)


class TestWorkloadsUnderVerification:
    @pytest.mark.parametrize("wl", ALL_WORKLOADS,
                             ids=lambda w: w.name)
    def test_zero_mismatches(self, wl):
        res = compile_program(
            wl.program("train"),
            CompilerOptions(verify_transforms=True))
        assert res.rolled_back == [], res.diagnostics.render()
        assert res.diagnostics.rollbacks() == []

    def test_cli_compare_verified(self, tmp_path, capsys):
        from repro.cli import main
        paths = []
        for name, text in MCF.sources("train"):
            p = tmp_path / name
            p.write_text(text)
            paths.append(str(p))
        assert main(["compare", *paths]) == 0
        out = capsys.readouterr().out
        assert "effect" in out
