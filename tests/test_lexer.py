"""Lexer tests."""

import pytest

from repro.frontend.lexer import tokenize, LexError, Token


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_input_gives_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifier(self):
        toks = tokenize("foo_bar42")
        assert toks[0].kind == "id"
        assert toks[0].text == "foo_bar42"

    def test_keyword_vs_identifier(self):
        assert kinds("int intx") == ["kw", "id"]

    def test_all_keywords_recognized(self):
        for kw in ("void", "char", "short", "int", "long", "float",
                   "double", "unsigned", "struct", "typedef", "if",
                   "else", "while", "do", "for", "return", "break",
                   "continue", "sizeof", "static", "const", "NULL"):
            assert tokenize(kw)[0].kind == "kw", kw

    def test_underscore_identifier(self):
        assert tokenize("__cold_link")[0].kind == "id"


class TestNumbers:
    def test_decimal_int(self):
        tok = tokenize("12345")[0]
        assert tok.kind == "int"
        assert tok.value == 12345

    def test_hex_int(self):
        tok = tokenize("0xFF")[0]
        assert tok.value == 255

    def test_float_with_point(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float"
        assert tok.value == 3.25

    def test_float_with_exponent(self):
        tok = tokenize("1e3")[0]
        assert tok.kind == "float"
        assert tok.value == 1000.0

    def test_float_negative_exponent(self):
        tok = tokenize("2.5e-2")[0]
        assert tok.value == 0.025

    def test_leading_dot_float(self):
        tok = tokenize(".5")[0]
        assert tok.kind == "float"
        assert tok.value == 0.5

    def test_integer_suffixes(self):
        toks = tokenize("10L 10UL 10u")
        assert [t.value for t in toks[:-1]] == [10, 10, 10]

    def test_zero(self):
        assert tokenize("0")[0].value == 0


class TestStringsAndChars:
    def test_string_literal(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind == "str"
        assert tok.value == "hello"

    def test_string_with_escapes(self):
        tok = tokenize(r'"a\nb\tc\"d"')[0]
        assert tok.value == 'a\nb\tc"d'

    def test_char_literal(self):
        tok = tokenize("'A'")[0]
        assert tok.kind == "char"
        assert tok.value == 65

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')


class TestOperators:
    def test_multichar_operators_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a++ + ++b") == ["a", "++", "+", "++", "b"]

    def test_comparison_operators(self):
        assert texts("a <= b >= c == d != e") == \
            ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]

    def test_logical_operators(self):
        assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]

    def test_compound_assignment(self):
        assert texts("a += b -= c *= d") == \
            ["a", "+=", "b", "-=", "c", "*=", "d"]

    def test_ellipsis(self):
        assert texts("int, ...") == ["int", ",", "..."]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].col == 3

    def test_line_number_after_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2

    def test_token_repr(self):
        assert "id" in str(Token("id", "x", 1, 1))
