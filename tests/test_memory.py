"""Simulated memory and heap allocator tests (with hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.memory import Memory, MemoryError_, HEAP_BASE


class TestCells:
    def test_unwritten_reads_zero(self):
        m = Memory()
        assert m.load(0x5000) == 0

    def test_store_load_roundtrip(self):
        m = Memory()
        m.store(0x5000, 42)
        m.store(0x5008, 2.5)
        assert m.load(0x5000) == 42
        assert m.load(0x5008) == 2.5

    def test_bit_cells_independent(self):
        m = Memory()
        m.store_bits(0x100, 0, 3)
        m.store_bits(0x100, 3, 7)
        assert m.load_bits(0x100, 0) == 3
        assert m.load_bits(0x100, 3) == 7
        assert m.load(0x100) == 0


class TestAllocator:
    def test_malloc_returns_aligned(self):
        m = Memory()
        for size in (1, 7, 33, 100):
            addr = m.malloc(size)
            assert addr % 16 == 0
            assert addr >= HEAP_BASE

    def test_allocations_disjoint(self):
        m = Memory()
        a = m.malloc(64)
        b = m.malloc(64)
        assert b >= a + 64 or a >= b + 64

    def test_free_and_reuse(self):
        m = Memory()
        a = m.malloc(128)
        m.free(a)
        b = m.malloc(128)
        assert b == a     # exact-size free list reuse

    def test_reuse_clears_stale_cells(self):
        m = Memory()
        a = m.malloc(64)
        m.store(a + 8, 99)
        m.free(a)
        b = m.malloc(64)
        assert m.load(b + 8) == 0

    def test_double_free_raises(self):
        m = Memory()
        a = m.malloc(16)
        m.free(a)
        with pytest.raises(MemoryError_):
            m.free(a)

    def test_invalid_free_raises(self):
        m = Memory()
        with pytest.raises(MemoryError_):
            m.free(0x1234)

    def test_free_null_is_noop(self):
        Memory().free(0)

    def test_calloc_reads_zero(self):
        m = Memory()
        a = m.calloc(4, 8)
        assert all(m.load(a + i * 8) == 0 for i in range(4))

    def test_realloc_preserves_prefix(self):
        m = Memory()
        a = m.malloc(32)
        m.store(a, 11)
        m.store(a + 24, 22)
        b = m.realloc(a, 64)
        assert m.load(b) == 11
        assert m.load(b + 24) == 22

    def test_realloc_shrink_drops_tail(self):
        m = Memory()
        a = m.malloc(32)
        m.store(a + 24, 5)
        b = m.realloc(a, 16)
        assert m.load(b + 24) == 0

    def test_realloc_null_is_malloc(self):
        m = Memory()
        assert m.realloc(0, 32) >= HEAP_BASE

    def test_stats(self):
        m = Memory()
        a = m.malloc(10)
        m.free(a)
        assert m.alloc_count == 1
        assert m.free_count == 1
        assert m.bytes_allocated == 10


class TestStreamingOps:
    def test_memset_zero_clears(self):
        m = Memory()
        a = m.malloc(64)
        m.store(a + 8, 7)
        m.memset(a, 0, 64)
        assert m.load(a + 8) == 0

    def test_memset_nonzero_fills_bytes(self):
        m = Memory()
        a = m.malloc(8)
        m.memset(a, 0xAB, 4)
        assert m.load(a + 3) == 0xAB
        assert m.load(a + 4) == 0

    def test_memcpy_copies_cells(self):
        m = Memory()
        src = m.malloc(32)
        dst = m.malloc(32)
        m.store(src, 1)
        m.store(src + 16, 2.5)
        m.memcpy(dst, src, 32)
        assert m.load(dst) == 1
        assert m.load(dst + 16) == 2.5

    def test_memcpy_overwrites_destination(self):
        m = Memory()
        src = m.malloc(16)
        dst = m.malloc(16)
        m.store(dst + 8, 42)
        m.memcpy(dst, src, 16)
        assert m.load(dst + 8) == 0


class TestSegments:
    def test_segments_disjoint(self):
        m = Memory()
        g = m.alloc_global(100)
        r = m.alloc_rodata("hi")
        c = m.alloc_counter()
        h = m.malloc(100)
        values = sorted([g, r, c, h])
        assert values == [g, r, h, c]

    def test_read_string(self):
        m = Memory()
        a = m.alloc_rodata("hello")
        assert m.read_string(a) == "hello"

    def test_read_string_from_cells(self):
        m = Memory()
        a = m.malloc(8)
        for i, ch in enumerate("abc"):
            m.store(a + i, ord(ch))
        assert m.read_string(a) == "abc"


# ---------------------------------------------------------------------------
# Property-based allocator invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=256), min_size=1,
                max_size=40))
def test_live_allocations_never_overlap(sizes):
    m = Memory()
    live = []
    for i, size in enumerate(sizes):
        addr = m.malloc(size)
        live.append((addr, size))
        if i % 3 == 2:           # free every third allocation
            a, _ = live.pop(0)
            m.free(a)
    spans = sorted((a, a + s) for a, s in live)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert e1 <= s2


@given(st.lists(st.tuples(st.integers(0, 63),
                          st.integers(-1000, 1000)), max_size=30))
def test_store_load_consistency(writes):
    m = Memory()
    base = m.malloc(64)
    shadow = {}
    for off, value in writes:
        m.store(base + off, value)
        shadow[off] = value
    for off, value in shadow.items():
        assert m.load(base + off) == value


@given(st.integers(1, 128), st.integers(1, 128))
def test_realloc_roundtrip(size1, size2):
    m = Memory()
    a = m.malloc(size1)
    m.store(a, 123)
    b = m.realloc(a, size2)
    assert m.load(b) == 123
    alloc = m.allocation_at(b)
    assert alloc is not None and alloc.live
