"""Unparser tests: rendered source must re-parse to an equivalent
program, and transformed programs are only ever produced through this
path."""

from hypothesis import given, strategies as st

from repro.frontend import Program
from repro.frontend.parser import parse_expr
from repro.runtime import run_program
from repro.transform.unparse import (
    expr_text, unit_text, program_sources, type_decl, struct_definition,
)
from repro.frontend.typesys import (
    INT, LONG, DOUBLE, PointerType, ArrayType, FunctionType, RecordType,
    Field,
)


class TestTypeDecl:
    def test_scalar(self):
        assert type_decl(INT, "x") == "int x"

    def test_pointer(self):
        assert type_decl(PointerType(LONG), "p") == "long *p"

    def test_pointer_to_pointer(self):
        assert type_decl(PointerType(PointerType(INT)), "pp") == \
            "int **pp"

    def test_array(self):
        assert type_decl(ArrayType(INT, 8), "a") == "int a[8]"

    def test_2d_array(self):
        assert type_decl(ArrayType(ArrayType(INT, 4), 2), "g") == \
            "int g[2][4]"

    def test_struct_pointer(self):
        rec = RecordType("s", [Field("x", INT)])
        assert type_decl(PointerType(rec), "p") == "struct s *p"

    def test_function_pointer(self):
        fp = PointerType(FunctionType(INT, (LONG,)))
        assert type_decl(fp, "cb") == "int (*cb)(long)"

    def test_struct_definition_with_bitfield(self):
        rec = RecordType("b")
        rec.add_field(Field("f", INT, bit_width=3))
        rec.layout()
        assert ": 3;" in struct_definition(rec)


class TestExprText:
    def roundtrip(self, text):
        e = parse_expr(text)
        rendered = expr_text(e)
        e2 = parse_expr(rendered)
        assert expr_text(e2) == rendered
        return rendered

    def test_precedence_preserved(self):
        assert self.roundtrip("(a + b) * c") == "(a + b) * c"
        assert self.roundtrip("a + b * c") == "a + b * c"

    def test_member_chain(self):
        assert self.roundtrip("p->q.r") == "p->q.r"

    def test_unary_minus_of_negative(self):
        e = parse_expr("-(-x)")
        assert parse_expr(expr_text(e)) is not None

    def test_assignment(self):
        assert self.roundtrip("a = b = c + 1") == "a = b = c + 1"

    def test_conditional(self):
        assert self.roundtrip("a ? b : c") == "a ? b : c"

    def test_call_with_args(self):
        assert self.roundtrip("f(a, b + 1, c[2])") == "f(a, b + 1, c[2])"

    def test_string_escapes(self):
        e = parse_expr(r'"a\nb\"c"')
        rendered = expr_text(e)
        assert parse_expr(rendered).value == e.value

    def test_sizeof(self):
        assert self.roundtrip("sizeof(int)") == "sizeof(int)"


PROGRAMS = [
    # each must print identical output before and after a round-trip
    """
    struct node { long v; struct node *next; int flag : 2; };
    struct node *head;
    long total(struct node *p) {
        long s = 0;
        while (p != NULL) { s += p->v; p = p->next; }
        return s;
    }
    int main() {
        int i;
        for (i = 0; i < 6; i++) {
            struct node *n = (struct node*) malloc(sizeof(struct node));
            n->v = i * i;
            n->flag = i;
            n->next = head;
            head = n;
        }
        printf("%ld", total(head));
        return 0;
    }
    """,
    """
    typedef struct pt pt_t;
    struct pt { double x; double y; };
    pt_t grid[4];
    int main() {
        int i;
        double s = 0.0;
        for (i = 0; i < 4; i++) { grid[i].x = i * 0.5; grid[i].y = -1.0; }
        for (i = 0; i < 4; i++) s += grid[i].x * grid[i].y;
        printf("%.2f", s);
        return 0;
    }
    """,
    """
    int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
    int main() {
        int i;
        for (i = 1; i < 7; i++) printf("%d ", fact(i));
        return 0;
    }
    """,
]


class TestProgramRoundtrip:
    def test_roundtrip_preserves_behaviour(self):
        for src in PROGRAMS:
            p1 = Program.from_source(src)
            out1 = run_program(p1).stdout
            sources = program_sources(p1)
            p2 = Program.from_sources(sources)
            out2 = run_program(p2).stdout
            assert out1 == out2

    def test_double_roundtrip_fixpoint(self):
        for src in PROGRAMS:
            p1 = Program.from_source(src)
            s1 = program_sources(p1)
            p2 = Program.from_sources(s1)
            s2 = program_sources(p2)
            assert s1 == s2        # unparse is a fixpoint after one trip

    def test_typedef_only_struct_emitted(self):
        src = """
        typedef struct hidden { long v; } hidden_t;
        hidden_t *g;
        int main() {
            g = (hidden_t*) malloc(2 * sizeof(hidden_t));
            g[1].v = 5;
            printf("%ld", g[1].v);
            return 0;
        }
        """
        p1 = Program.from_source(src)
        p2 = Program.from_sources(program_sources(p1))
        assert run_program(p2).stdout == "5"


# a tiny expression grammar for property-based roundtripping
_names = st.sampled_from(["a", "b", "c"])
_leaf = st.one_of(
    st.integers(0, 1000).map(lambda v: str(v)),
    _names,
)


def _binop(children):
    return st.tuples(
        children, st.sampled_from(["+", "-", "*", "&", "|", "<", "=="]),
        children,
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")


_exprs = st.recursive(_leaf, _binop, max_leaves=12)


@given(_exprs)
def test_expr_roundtrip_property(text):
    e1 = parse_expr(text)
    rendered = expr_text(e1)
    e2 = parse_expr(rendered)
    assert expr_text(e2) == rendered
