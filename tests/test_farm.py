"""The resilient compile farm: router, cache service, drain, chaos.

Contracts under test:

- **Sharding** is weighted rendezvous hashing on the workload
  fingerprint: deterministic, weight-proportional, and minimally
  disruptive (removing a shard only moves that shard's keys).
- **Failover**: connection loss, shed (busy) responses, and
  status-error responses all send the request to the next-ranked
  shard; the response says so in its ``route`` block.
- **Hedging**: a request stuck past the latency percentile gets a
  duplicate on the next shard and the first answer wins.
- **Health**: consecutive failures eject a shard; a recovered shard
  is readmitted by the probe loop; a draining shard is suspended
  without being treated as dead.
- **Drain**: a draining daemon refuses new work (busy + reason
  "draining"), finishes in-flight requests, then exits on its own.
- **Cache service**: content-addressed get/put over the wire, LRU
  eviction under a byte budget, corruption quarantined server-side
  and surfaced as a miss, and an unreachable service degrading to
  misses — never exceptions.
"""

import os
import pickle
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.core import inject_cache_fault
from repro.core.summarycache import SummaryCache
from repro.service import (
    COMPILE_OPS, CacheServer, CacheStore, ClusterConfig, Farm,
    LineServer, RemoteCache, Router, RouterPeer, RouterServer,
    ServiceClient, ShardSpec, Supervisor, SupervisorConfig,
    busy_response, error_response, parse_budget, response,
    single_request, wait_ready,
)

# AF_UNIX socket paths are limited to ~107 bytes; pytest tmp_path can
# blow that, so sockets live under a short /tmp dir
def _tmpdir():
    return tempfile.mkdtemp(prefix="repro-farm-", dir="/tmp")


class FakeShard(LineServer):
    """A scriptable stand-in for a compile daemon."""

    WORK_OPS = COMPILE_OPS

    def __init__(self, socket_path, name, behavior="ok", delay=0.0):
        super().__init__(socket_path)
        self.name = name
        self.behavior = behavior      # ok | busy | error
        self.delay = delay
        self.served = 0

    def handle_request(self, raw):
        req_id, op = raw.get("id"), raw.get("op")
        if op == "ping":
            return {"id": req_id, "op": "ping", "status": "ok",
                    "pong": True, "draining": self.draining}
        if op == "drain":
            return {"id": req_id, "op": "drain", "status": "ok",
                    **self.begin_drain()}
        if op == "shutdown":
            return {"id": req_id, "op": "shutdown", "status": "ok"}
        if self.delay:
            time.sleep(self.delay)
        if self.behavior == "busy":
            return busy_response(req_id, op)
        if self.behavior == "error":
            return error_response(req_id, op, "scripted failure")
        self.served += 1
        return response(req_id, op, "ok", tier="full",
                        payload={"served_by": self.name})


REQ = {"op": "analyze", "id": 7,
       "sources": [["demo.c", "struct s { int a; };"]]}


def make_cluster(tmp, n=2, weights=None):
    weights = weights or [1.0] * n
    return ClusterConfig(shards=[
        ShardSpec(name=f"s{i}", socket=os.path.join(tmp, f"s{i}.sock"),
                  weight=weights[i]) for i in range(n)])


def start_shards(cluster, **kw):
    shards = []
    for spec in cluster.shards:
        shard = FakeShard(spec.socket, spec.name, **kw)
        shard.start()
        shards.append(shard)
    return shards


# ---------------------------------------------------------------------------
# cluster config
# ---------------------------------------------------------------------------

class TestClusterConfig:
    def test_round_trips_through_file(self, tmp_path):
        cfg = ClusterConfig(
            shards=[ShardSpec("a", "/tmp/a.sock", 2.0),
                    ShardSpec("b", "/tmp/b.sock")],
            cache_socket="/tmp/c.sock")
        path = tmp_path / "cluster.json"
        cfg.write(path)
        loaded = ClusterConfig.from_file(path)
        assert loaded.to_dict() == cfg.to_dict()

    @pytest.mark.parametrize("bad", [
        {},                                          # no shards
        {"shards": [{"name": "a"}]},                 # no socket
        {"shards": [{"name": "a", "socket": "x", "weight": 0}]},
        {"shards": [{"name": "a", "socket": "x"},
                    {"name": "a", "socket": "y"}]},  # dup names
    ])
    def test_rejects_bad_configs(self, bad):
        with pytest.raises(ValueError):
            ClusterConfig.from_dict(bad)

    def test_missing_file_is_a_value_error(self):
        with pytest.raises(ValueError, match="cannot read"):
            ClusterConfig.from_file("/nonexistent/cluster.json")


# ---------------------------------------------------------------------------
# rendezvous sharding
# ---------------------------------------------------------------------------

class TestSharding:
    def test_ranking_is_deterministic(self):
        router = Router(make_cluster(_tmpdir(), 3))
        fp = Router.workload_fingerprint(REQ)
        first = [s.name for s in router.rank(fp)]
        assert first == [s.name for s in router.rank(fp)]
        assert len(first) == 3

    def test_same_sources_same_shard_different_sources_spread(self):
        router = Router(make_cluster(_tmpdir(), 3))
        winners = set()
        for i in range(64):
            req = {"op": "analyze",
                   "sources": [[f"u{i}.c", f"struct s{i} {{int a;}};"]]}
            fp = Router.workload_fingerprint(req)
            winners.add(router.rank(fp)[0].name)
        assert winners == {"s0", "s1", "s2"}   # all shards attract work

    def test_removing_winner_only_moves_its_keys(self):
        """The rendezvous property: dropping shard X reassigns only
        workloads X was winning; everyone else's winner is stable."""
        tmp = _tmpdir()
        full = Router(make_cluster(tmp, 3))
        fps = [Router.workload_fingerprint(
            {"op": "analyze", "sources": [[f"u{i}.c", f"x{i}"]]})
            for i in range(50)]
        before = {fp: full.rank(fp)[0].name for fp in fps}
        # drop s1 by marking it unhealthy
        s1 = next(s for s in full.shards if s.name == "s1")
        s1.healthy = False
        after = {fp: full.rank(fp)[0].name for fp in fps}
        for fp in fps:
            if before[fp] != "s1":
                assert after[fp] == before[fp]
            else:
                assert after[fp] != "s1"

    def test_weights_bias_the_keyspace(self):
        router = Router(make_cluster(_tmpdir(), 2, weights=[1.0, 3.0]))
        wins = {"s0": 0, "s1": 0}
        for i in range(400):
            fp = Router.workload_fingerprint(
                {"op": "analyze", "sources": [[f"u{i}.c", f"b{i}"]]})
            wins[router.rank(fp)[0].name] += 1
        share = wins["s1"] / 400
        assert 0.6 < share < 0.9      # expect ~0.75 for weight 3:1


# ---------------------------------------------------------------------------
# dispatch: failover and hedging
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_routes_to_the_rendezvous_winner(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        shards = start_shards(cluster)
        try:
            router = Router(cluster)
            resp = router.dispatch(dict(REQ))
            assert resp["status"] == "ok"
            fp = Router.workload_fingerprint(REQ)
            assert resp["route"]["shard"] == router.rank(fp)[0].name
            assert resp["route"]["failovers"] == 0
            assert resp["payload"]["served_by"] \
                == resp["route"]["shard"]
        finally:
            for s in shards:
                s.shutdown()

    def test_fails_over_when_the_winner_is_dead(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        shards = start_shards(cluster)
        router = Router(cluster, fail_threshold=1)
        fp = Router.workload_fingerprint(REQ)
        winner = router.rank(fp)[0].name
        try:
            next(s for s in shards if s.name == winner).shutdown()
            resp = router.dispatch(dict(REQ))
            assert resp["status"] == "ok"
            assert resp["route"]["shard"] != winner
            assert resp["route"]["failovers"] == 1
            assert router.counters["failovers"] == 1
            # the traffic failure also ejected the dead shard
            dead = next(s for s in router.shards
                        if s.name == winner)
            assert not dead.healthy
        finally:
            for s in shards:
                s.shutdown()

    @pytest.mark.parametrize("behavior", ["busy", "error"])
    def test_fails_over_on_shed_and_error_responses(self, behavior):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        router = Router(cluster)
        fp = Router.workload_fingerprint(REQ)
        winner = router.rank(fp)[0].name
        shards = []
        for spec in cluster.shards:
            shard = FakeShard(
                spec.socket, spec.name,
                behavior=behavior if spec.name == winner else "ok")
            shard.start()
            shards.append(shard)
        try:
            resp = router.dispatch(dict(REQ))
            assert resp["status"] == "ok"
            assert resp["route"]["shard"] != winner
            assert resp["route"]["failovers"] == 1
        finally:
            for s in shards:
                s.shutdown()

    def test_hedges_past_the_latency_floor_and_fast_shard_wins(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        router = Router(cluster, hedge_floor=0.15, shard_timeout=30.0)
        fp = Router.workload_fingerprint(REQ)
        winner = router.rank(fp)[0].name
        shards = []
        for spec in cluster.shards:
            shard = FakeShard(
                spec.socket, spec.name,
                delay=2.5 if spec.name == winner else 0.0)
            shard.start()
            shards.append(shard)
        try:
            t0 = time.monotonic()
            resp = router.dispatch(dict(REQ))
            elapsed = time.monotonic() - t0
            assert resp["status"] == "ok"
            assert resp["route"]["hedged"] is True
            assert resp["route"]["shard"] != winner
            assert elapsed < 2.0      # did not wait out the slow shard
            assert router.counters["hedges"] == 1
            assert router.counters["hedge_wins"] == 1
        finally:
            for s in shards:
                s.shutdown()

    def test_all_shards_down_is_a_structured_error(self):
        router = Router(make_cluster(_tmpdir(), 2), fail_threshold=1)
        resp = router.dispatch(dict(REQ))
        assert resp["status"] == "error"
        assert resp["id"] == REQ["id"]
        assert "error" in resp

    def test_draining_shard_is_suspended_not_failed(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        shards = start_shards(cluster)
        router = Router(cluster)
        fp = Router.workload_fingerprint(REQ)
        winner = router.rank(fp)[0].name
        try:
            # mark the winner draining without letting it exit (a real
            # drain with zero in-flight work shuts down immediately)
            next(s for s in shards
                 if s.name == winner)._draining.set()
            # probe sees draining: suspended, zero failures counted
            state = next(s for s in router.shards
                         if s.name == winner)
            router.probe(state)
            assert state.draining
            assert state.consecutive_failures == 0
            resp = router.dispatch(dict(REQ))
            assert resp["status"] == "ok"
            assert resp["route"]["shard"] != winner
        finally:
            for s in shards:
                s.shutdown()


# ---------------------------------------------------------------------------
# health: ejection and readmission
# ---------------------------------------------------------------------------

class TestHealth:
    def test_consecutive_failures_eject_then_readmit(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 1)
        router = Router(cluster, fail_threshold=3)
        state = router.shards[0]
        for _ in range(3):
            state.ejected_until = 0.0     # probe immediately
            router.probe(state)
        assert not state.healthy
        assert state.ejections == 1
        assert router.counters["ejections"] == 1
        # the shard comes back; the next due probe readmits it
        shard = FakeShard(cluster.shards[0].socket, "s0")
        shard.start()
        try:
            state.ejected_until = 0.0
            assert router.probe(state)
            assert state.healthy
            assert router.counters["readmissions"] == 1
        finally:
            shard.shutdown()

    def test_ejected_shard_not_probed_before_backoff(self):
        router = Router(make_cluster(_tmpdir(), 1), fail_threshold=1)
        state = router.shards[0]
        router.probe(state)
        assert not state.healthy
        assert state.ejected_until > time.monotonic()
        failures = state.failed
        assert router.probe(state) is False
        assert state.failed == failures   # skipped, not re-failed


# ---------------------------------------------------------------------------
# RouterServer: the farm's front door
# ---------------------------------------------------------------------------

class TestRouterServer:
    def test_serves_compiles_stats_and_ping(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 2)
        shards = start_shards(cluster)
        server = RouterServer(os.path.join(tmp, "router.sock"),
                              Router(cluster))
        server.start()
        try:
            resp = single_request(server.socket_path, dict(REQ))
            assert resp["status"] == "ok"
            assert resp["route"]["shard"] in ("s0", "s1")
            ping = single_request(server.socket_path, {"op": "ping"})
            assert ping["role"] == "router"
            assert ping["shards"] == 2
            stats = single_request(server.socket_path,
                                   {"op": "stats"})["stats"]
            assert stats["router"]["requests"] == 1
            assert set(stats["shards"]) == {"s0", "s1"}
            assert stats["server"]["role"] == "router"
        finally:
            server.shutdown()
            for s in shards:
                s.shutdown()

    def test_drain_refuses_new_work_then_exits(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, 1)
        shards = start_shards(cluster, delay=0.5)
        server = RouterServer(os.path.join(tmp, "router.sock"),
                              Router(cluster))
        server.start()
        try:
            results = {}

            def slow_request():
                results["resp"] = single_request(
                    server.socket_path, dict(REQ), timeout=30)

            t = threading.Thread(target=slow_request)
            t.start()
            time.sleep(0.15)          # in flight now
            drain = single_request(server.socket_path, {"op": "drain"})
            assert drain["draining"] is True
            assert drain["in_flight"] == 1
            # new work on the draining server is shed with a reason
            shed = single_request(server.socket_path, dict(REQ))
            assert shed["status"] == "busy"
            assert shed["error"]["reason"] == "draining"
            # the in-flight request still completes
            t.join(timeout=10)
            assert results["resp"]["status"] == "ok"
            # and the server exits once drained
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    single_request(server.socket_path, {"op": "ping"},
                                   timeout=0.5, reconnects=0)
                    time.sleep(0.05)
                except (OSError, ConnectionError):
                    break
            else:
                pytest.fail("drained router never exited")
        finally:
            server.shutdown()
            for s in shards:
                s.shutdown()


# ---------------------------------------------------------------------------
# client reconnect
# ---------------------------------------------------------------------------

class TestClientReconnect:
    def test_idempotent_request_survives_a_server_restart(self):
        tmp = _tmpdir()
        sock = os.path.join(tmp, "s.sock")
        shard = FakeShard(sock, "a")
        shard.start()
        client = ServiceClient(sock, timeout=5.0, reconnects=3,
                               jitter_seed=7)
        try:
            assert client.request({"op": "ping"})["pong"]
            # restart the daemon under the connected client
            shard.shutdown()
            shard = FakeShard(sock, "a2")
            shard.start()
            resp = client.request(dict(REQ))
            assert resp["status"] == "ok"      # reconnected + resent
        finally:
            client.close()
            shard.shutdown()

    def test_non_idempotent_ops_fail_fast(self):
        # a server that hangs up without answering: every attempt is a
        # connection, so the connection count is the resend count
        tmp = _tmpdir()
        sock_path = os.path.join(tmp, "s.sock")
        srv = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        srv.bind(sock_path)
        srv.listen(4)
        hangups = []

        def slam():
            while True:
                try:
                    conn, _ = srv.accept()
                except OSError:
                    return
                hangups.append(1)
                conn.close()

        threading.Thread(target=slam, daemon=True).start()
        client = ServiceClient(sock_path, timeout=5.0, reconnects=3,
                               backoff_base=0.01)
        try:
            with pytest.raises((OSError, ConnectionError)):
                client.request({"op": "shutdown"})
            assert len(hangups) == 1   # shutdown is never resent
        finally:
            client.close()
            srv.close()

    def test_reconnect_gives_up_after_the_budget(self):
        client = ServiceClient("/tmp/repro-no-such.sock",
                               reconnects=2, backoff_base=0.01)
        t0 = time.monotonic()
        with pytest.raises((OSError, ConnectionError)):
            client.request({"op": "ping"})
        assert time.monotonic() - t0 < 2.0    # bounded, not forever


# ---------------------------------------------------------------------------
# cache service
# ---------------------------------------------------------------------------

@pytest.fixture
def cache_service():
    tmp = _tmpdir()
    store = CacheStore(os.path.join(tmp, "cache"))
    server = CacheServer(os.path.join(tmp, "c.sock"), store)
    server.start()
    yield server, store
    server.shutdown()


class TestCacheService:
    def test_remote_get_put_round_trip(self, cache_service):
        server, store = cache_service
        rc = RemoteCache(server.socket_path)
        key = SummaryCache.key_for("summary", "unit-a")
        assert rc.load("summary", key) is None
        assert rc.store("summary", key, {"x": 1})
        assert rc.load("summary", key) == {"x": 1}
        assert rc.hits == 1 and rc.misses == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["puts"] == 1
        rc.close()

    def test_two_clients_share_one_store(self, cache_service):
        server, _ = cache_service
        a = RemoteCache(server.socket_path)
        b = RemoteCache(server.socket_path)
        key = SummaryCache.key_for("parse", "shared")
        a.store("parse", key, {"warm": True})
        assert b.load("parse", key) == {"warm": True}
        a.close()
        b.close()

    def test_lru_eviction_under_budget(self):
        tmp = _tmpdir()
        store = CacheStore(os.path.join(tmp, "cache"),
                           budget_bytes=parse_budget("4K"))
        server = CacheServer(os.path.join(tmp, "c.sock"), store)
        server.start()
        try:
            rc = RemoteCache(server.socket_path)
            keys = [SummaryCache.key_for("parse", f"u{i}")
                    for i in range(30)]
            for i, key in enumerate(keys):
                assert rc.store("parse", key, {"i": i, "pad": "x" * 200})
            stats = store.stats()
            assert stats["evictions"] > 0
            assert stats["bytes"] <= 4000
            # newest entries survive, oldest were evicted
            assert rc.load("parse", keys[-1]) is not None
            assert rc.load("parse", keys[0]) is None
            rc.close()
        finally:
            server.shutdown()

    def test_gets_refresh_recency(self):
        tmp = _tmpdir()
        store = CacheStore(os.path.join(tmp, "cache"), budget_bytes=3000)
        server = CacheServer(os.path.join(tmp, "c.sock"), store)
        server.start()
        try:
            rc = RemoteCache(server.socket_path)
            hot = SummaryCache.key_for("parse", "hot")
            rc.store("parse", hot, {"hot": True, "pad": "x" * 100})
            for i in range(20):
                rc.store("parse", SummaryCache.key_for("parse", f"u{i}"),
                         {"i": i, "pad": "x" * 100})
                rc.load("parse", hot)     # keep the hot key recent
            assert store.stats()["evictions"] > 0
            assert rc.load("parse", hot) is not None
            rc.close()
        finally:
            server.shutdown()

    def test_corruption_is_quarantined_and_served_as_miss(
            self, cache_service):
        server, store = cache_service
        rc = RemoteCache(server.socket_path)
        key = SummaryCache.key_for("summary", "doomed")
        rc.store("summary", key, {"ok": True})
        path = store.cache._path("summary", key)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3] + b"\x00\x00\x00")   # flip payload
        assert rc.load("summary", key) is None
        assert [e for e in rc.events if e.kind == "corrupt"]
        assert store.stats()["corrupt"] == 1
        assert not path.exists()      # quarantined server-side
        quarantine = store.cache.root / "quarantine"
        assert list(quarantine.glob("*.pkl"))
        rc.close()

    def test_unreachable_service_degrades_to_misses(self):
        rc = RemoteCache("/tmp/repro-no-cache.sock", timeout=0.5,
                         reconnects=0)
        key = SummaryCache.key_for("summary", "x")
        assert rc.load("summary", key) is None
        assert rc.store("summary", key, {"x": 1}) is False
        kinds = {e.kind for e in rc.events}
        assert kinds == {"io-error"}
        rc.close()

    def test_enospc_fault_contains_remote_stores(self, cache_service):
        server, _ = cache_service
        rc = RemoteCache(server.socket_path)
        key = SummaryCache.key_for("summary", "full-disk")
        with inject_cache_fault("enospc", op="store"):
            assert rc.store("summary", key, {"x": 1}) is False
        assert [e for e in rc.events if e.kind == "io-error"]
        assert rc.store("summary", key, {"x": 1})   # disarmed: fine
        rc.close()

    @pytest.mark.parametrize("req", [
        {"op": "cache.get", "category": "../evil", "key": "a" * 8},
        {"op": "cache.get", "category": "parse", "key": "../../etc"},
        {"op": "cache.get", "category": "quarantine", "key": "a" * 8},
        {"op": "cache.put", "category": "parse", "key": "k" * 8,
         "blob": "!!not-base64!!"},
        {"op": "cache.nope"},
    ])
    def test_bad_requests_get_structured_errors(self, cache_service,
                                                req):
        server, _ = cache_service
        resp = single_request(server.socket_path, req)
        assert resp["status"] == "error"

    def test_stats_op_reports_budget_and_counters(self, cache_service):
        server, _ = cache_service
        stats = single_request(server.socket_path,
                               {"op": "cache.stats"})["stats"]
        assert stats["server"]["role"] == "cache"
        assert "hits" in stats["cache"]
        assert "budget_bytes" in stats["cache"]

    def test_index_rebuilds_from_disk_on_restart(self):
        tmp = _tmpdir()
        root = os.path.join(tmp, "cache")
        store = CacheStore(root)
        key = SummaryCache.key_for("parse", "persisted")
        store.put("parse", key, pickle.dumps({"persisted": True}))
        reopened = CacheStore(root)
        assert reopened.stats()["entries"] == 1
        assert reopened.stats()["bytes"] > 0


class TestParseBudget:
    @pytest.mark.parametrize("spec,expected", [
        (None, None), (0, None), ("0", None), (65536, 65536),
        ("65536", 65536), ("512K", 512_000), ("64M", 64_000_000),
        ("2G", 2_000_000_000), ("1.5M", 1_500_000),
    ])
    def test_accepts(self, spec, expected):
        assert parse_budget(spec) == expected

    @pytest.mark.parametrize("bad", ["lots", "64Q", ""])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_budget(bad)


# ---------------------------------------------------------------------------
# crash-report rotation
# ---------------------------------------------------------------------------

class TestCrashRotation:
    def test_reports_capped_oldest_first_with_counter(self, tmp_path):
        sup = Supervisor(SupervisorConfig(
            crash_dir=str(tmp_path / "crashes"), crash_max=5))
        for i in range(12):
            sup._crash_report(
                op="analyze", tier="full", request_id=i, attempt=1,
                units=["u.c"], last_stage="apply", reason="crash",
                detail=f"synthetic {i}", exitcode=-9)
        reports = sorted((tmp_path / "crashes").glob("crash-*.json"))
        assert len(reports) == 5
        # the survivors are the newest five (seq 0008..0012)
        assert all(int(p.stem.rsplit("-", 1)[1]) >= 8 for p in reports)
        assert sup.stats_counters["crash_reports_dropped"] == 7
        assert sup.stats()["supervisor"]["crash_reports_dropped"] == 7

    def test_unbounded_when_cap_disabled(self, tmp_path):
        sup = Supervisor(SupervisorConfig(
            crash_dir=str(tmp_path / "crashes"), crash_max=0))
        for i in range(8):
            sup._crash_report(
                op="analyze", tier="full", request_id=i, attempt=1,
                units=[], last_stage="apply", reason="crash",
                detail="", exitcode=None)
        assert len(list((tmp_path / "crashes").glob("*.json"))) == 8
        assert sup.stats_counters["crash_reports_dropped"] == 0

    def test_remote_cache_spec_does_not_nest_crash_dir(self):
        sup = Supervisor(SupervisorConfig(
            cache_dir="unix:/tmp/cache.sock"))
        assert not str(sup.config.crash_dir).startswith("unix:")
        assert os.path.isdir(sup.config.crash_dir)


# ---------------------------------------------------------------------------
# orphan reaping: workers must not outlive a SIGKILLed daemon
# ---------------------------------------------------------------------------

def _children_of(pid):
    """Live (non-zombie) direct children of *pid*, via /proc."""
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                stat = fh.read()
        except OSError:
            continue
        # comm may contain spaces — split after the closing paren
        fields = stat.rsplit(")", 1)[1].split()
        if fields[0] != "Z" and int(fields[1]) == pid:
            kids.append(int(entry))
    return kids


def _alive(pid):
    try:
        with open(f"/proc/{pid}/stat") as fh:
            stat = fh.read()
    except OSError:
        return False
    return stat.rsplit(")", 1)[1].split()[0] != "Z"


@pytest.mark.skipif(not os.path.isdir("/proc"),
                    reason="needs /proc to observe the process tree")
class TestWorkerOrphanReaping:
    def test_workers_of_sigkilled_daemon_exit_on_their_own(self):
        # Forked workers inherit the supervisor's pipe ends, so a
        # SIGKILLed daemon never delivers EOF on the job pipe; the
        # parent-liveness watchdog is what reaps them.  This is the
        # chaos drill's kill step: without the watchdog every -9
        # leaks one orphan per pool worker.
        tmp = _tmpdir()
        sock = os.path.join(tmp, "d.sock")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--pool-size", "2",
             "--crash-dir", os.path.join(tmp, "crashes")],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            assert wait_ready(sock, timeout=60), "daemon not ready"
            workers = _children_of(proc.pid)
            assert len(workers) >= 2, "expected a spawned worker pool"
        finally:
            proc.kill()
        proc.wait(timeout=10)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in workers):
                break
            time.sleep(0.1)
        leaked = [pid for pid in workers if _alive(pid)]
        for pid in leaked:              # clean up before failing
            os.kill(pid, 9)
        assert not leaked, f"workers outlived SIGKILLed daemon: {leaked}"


# ---------------------------------------------------------------------------
# rolling restart with a non-empty queue (real subprocess daemons)
# ---------------------------------------------------------------------------

class TestRollingRestartUnderLoad:
    def test_rolling_restart_zero_failed_with_queued_requests(self):
        """`Farm.rolling_restart()` while more requests are in flight
        than the farm has workers — so shard queues are non-empty when
        each drain lands.  Contract: every request is answered, none
        fail; draining shards fail over instead of erroring."""
        tmp = _tmpdir()
        farm = Farm(tmp, daemons=2, pool_size=1)
        farm.start(ready_timeout=120)
        try:
            n = 8
            reqs = [{"id": i, "op": "analyze",
                     "sources": [[f"w{i}.c",
                                  "struct s%d { long a; long b; "
                                  "int c; };\nstruct s%d *v;\n"
                                  "int main() { return %d; }\n"
                                  % (i, i, i)]],
                     "options": {"cache": False}}
                    for i in range(n)]
            responses: dict = {}
            dropped: dict = {}

            def one(req):
                try:
                    responses[req["id"]] = single_request(
                        farm.router_socket, req, timeout=240)
                except Exception as exc:    # noqa: BLE001
                    dropped[req["id"]] = repr(exc)

            threads = [threading.Thread(target=one, args=(r,))
                       for r in reqs]
            for t in threads:
                t.start()
            time.sleep(0.3)                 # batch in flight / queued
            farm.rolling_restart(ready_timeout=120)
            for t in threads:
                t.join(timeout=240)
            assert not dropped, dropped
            assert len(responses) == n
            bad = {i: r["status"] for i, r in responses.items()
                   if r["status"] not in ("ok", "degraded")}
            assert not bad, bad
            restarts = {s: farm.procs[s].restarts
                        for s in ("s0", "s1")}
            assert all(r >= 1 for r in restarts.values()), restarts
        finally:
            farm.stop()


# ---------------------------------------------------------------------------
# router high availability: active/standby pair, takeover, supervision
# ---------------------------------------------------------------------------

def _ha_pair(tmp, cluster, **kw):
    """An in-process active/standby router pair over `cluster`."""
    kw.setdefault("peer_probe_interval", 0.1)
    kw.setdefault("peer_fail_threshold", 2)
    kw.setdefault("peer_timeout", 0.5)
    r0_sock = os.path.join(tmp, "r0.sock")
    r1_sock = os.path.join(tmp, "r1.sock")
    r0 = RouterServer(r0_sock, Router(cluster), rank=0,
                      peers=[RouterPeer(socket=r1_sock, rank=1)], **kw)
    r1 = RouterServer(r1_sock, Router(cluster), rank=1,
                      peers=[RouterPeer(socket=r0_sock, rank=0)], **kw)
    r0.start()
    r1.start()
    assert wait_ready(r0_sock) and wait_ready(r1_sock)
    return r0, r1, r0_sock, r1_sock


class TestRouterHA:
    def test_lowest_rank_is_active_and_both_serve(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, n=1)
        shards = start_shards(cluster)
        r0, r1, r0_sock, r1_sock = _ha_pair(tmp, cluster)
        try:
            assert single_request(r0_sock, {"op": "ping"})["active"] \
                is True
            assert single_request(r1_sock, {"op": "ping"})["active"] \
                is False
            # standby routers still route — the active flag is
            # preference, not a gate (requests are idempotent)
            for sock in (r0_sock, r1_sock):
                resp = single_request(sock, REQ)
                assert resp["status"] == "ok"
                assert resp["route"]["shard"] == "s0"
        finally:
            r0.shutdown()
            r1.shutdown()
            for s in shards:
                s.shutdown()

    def test_standby_takes_over_within_two_seconds(self):
        tmp = _tmpdir()
        cluster = make_cluster(tmp, n=1)
        shards = start_shards(cluster)
        r0, r1, r0_sock, r1_sock = _ha_pair(tmp, cluster)
        try:
            client = ServiceClient(f"unix:{r0_sock},unix:{r1_sock}",
                                   timeout=30.0)
            assert client.request(REQ)["status"] == "ok"
            assert client.endpoint == r0_sock
            died = time.monotonic()
            r0.shutdown()
            # the same client object keeps working: one reconnect
            # lands on the standby
            resp = client.request(REQ)
            assert resp["status"] == "ok"
            assert client.endpoint == r1_sock
            # the standby notices and promotes itself inside the gate
            while time.monotonic() - died < 2.0:
                if single_request(r1_sock, {"op": "ping"})["active"]:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("standby never became active within 2 s")
            assert r1.takeovers == 1
            ha = r1.stats()["ha"]
            assert ha["active"] is True and ha["takeovers"] == 1
            client.close()
        finally:
            r1.shutdown()
            for s in shards:
                s.shutdown()

    def test_farm_spawns_supervises_and_respawns_router_pair(self):
        """Real-subprocess HA: `Farm(routers=2)` runs an active +
        standby router pair, a SIGKILLed active costs the client one
        retry, and supervision respawns the corpse like a daemon."""
        tmp = _tmpdir()
        farm = Farm(tmp, daemons=1, pool_size=1, routers=2)
        farm.start(ready_timeout=120)
        try:
            assert farm.router_endpoints \
                == f"unix:{tmp}/r0.sock,unix:{tmp}/r1.sock"
            assert single_request(
                farm.router_sockets[0], {"op": "ping"})["active"]
            client = ServiceClient(farm.router_endpoints,
                                   timeout=120.0)
            req = {"id": 1, "op": "analyze",
                   "sources": [["w.c", "struct s { long a; int b; };"
                                "\nint main() { return 0; }\n"]],
                   "options": {"cache": False}}
            assert client.request(req)["status"] == "ok"
            farm.start_supervision(interval=0.2, ready_timeout=120)
            farm.kill_proc("r0")
            # the surviving standby answers the very next request
            resp = client.request({**req, "id": 2})
            assert resp["status"] == "ok"
            # ...and the supervisor brings r0 back on its socket
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if farm.procs["r0"].restarts >= 1 \
                        and farm.procs["r0"].alive() \
                        and wait_ready(farm.router_sockets[0],
                                       timeout=1.0):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("supervision never respawned r0")
            client.close()
        finally:
            farm.stop()
