"""Global layout search: SA, exact B&B, batched replay oracle, API."""

import random

import pytest

from repro.api import ApiError, CompileOptions, CompileRequest, \
    SearchOptions
from repro.core import Compiler, CompilerOptions
from repro.core.summarycache import SummaryCache
from repro.frontend import Program
from repro.runtime import run_program
from repro.runtime.replay import (
    capture_trace, plan_layout, precompile, replay_batch,
    replay_reference,
)
from repro.transform.search import (
    Layout, LayoutOracle, bb_order, exhaustive_order,
    run_layout_search, search_mode,
)
from repro.workloads import ALL_WORKLOADS, get_workload

MCF = get_workload("181.mcf")

#: cycle budget that truncates every workload's trace to a fast prefix
SHORT = 1_000_000


def _analysis(workload, input_set="train"):
    res = Compiler(CompilerOptions(transform=False)) \
        .compile_sources(workload.sources(input_set))
    assert not res.program.frontend_errors
    return res


@pytest.fixture(scope="module")
def mcf_res():
    return _analysis(MCF)


@pytest.fixture(scope="module")
def mcf_trace(mcf_res):
    return capture_trace(mcf_res.program, cycle_limit=SHORT)


def _search(res, trace, **kw):
    opts = SearchOptions(**{"engine": "sa", "seed": 3, "sa_iters": 6,
                            "sa_restarts": 1, "budget_s": 60.0, **kw})
    return run_layout_search(res.program, res.decisions, res.legality,
                            res.profiles, opts, trace=trace)


class TestTraceCapture:
    def test_traced_cycles_match_plain_run(self, mcf_res):
        # recording wrappers must not perturb the machine's accounting
        full = capture_trace(mcf_res.program)
        plain = run_program(mcf_res.program)
        assert full.cycles == plain.cycles
        assert full.stdout == plain.stdout
        assert not full.truncated
        assert len(full) > 0

    def test_truncated_prefix(self, mcf_trace):
        assert mcf_trace.truncated
        # the in-flight instruction finishes, so allow a short tail
        assert mcf_trace.cycles <= SHORT + 1_000
        assert len(mcf_trace) > 0


class TestReplayParity:
    def test_fast_path_matches_reference(self, mcf_trace):
        # the exec-specialized replayer is an optimization of the
        # real CacheHierarchy walk — cycle-exact, layout by layout
        compiled = precompile(mcf_trace, "node")
        live = [f.name for f in compiled.fields]
        layouts = [
            Layout((tuple(live),)),
            Layout((tuple(reversed(live)),)),
            Layout((tuple(live[:3]), tuple(live[3:])), linked=True),
            Layout((tuple(live[::2]), tuple(live[1::2]))),
        ]
        plans = [plan_layout(compiled, l.groups, l.linked, l.dead)
                 for l in layouts]
        fast = replay_batch(compiled, plans)
        # replay_reference already includes base_cycles
        ref = [replay_reference(compiled, p) for p in plans]
        assert fast == ref


class TestSeededDeterminism:
    def test_same_seed_same_result(self, mcf_res, mcf_trace):
        # iteration-bounded with an ample budget: wall clock never
        # decides, so two runs are byte-identical
        runs = [_search(mcf_res, mcf_trace) for _ in range(2)]
        (d1, s1), (d2, s2) = runs
        strip = [{k: v for k, v in s.items()
                  if not isinstance(v, dict) or k == "_trace"}
                 for s in (s1, s2)]
        for t in s1:
            if t.startswith("_"):
                continue
            assert s1[t]["best_fingerprint"] == \
                s2[t]["best_fingerprint"]
            assert s1[t]["best_cycles"] == s2[t]["best_cycles"]
            assert s1[t]["evals"] == s2[t]["evals"]
        assert [(d.type_name, d.action, d.hot_order, d.cold_fields)
                for d in d1] == \
            [(d.type_name, d.action, d.hot_order, d.cold_fields)
             for d in d2]
        assert strip[0]["_trace"] == strip[1]["_trace"]

    def test_different_seed_may_differ_but_never_worse(
            self, mcf_res, mcf_trace):
        for seed in (1, 2):
            _, stats = _search(mcf_res, mcf_trace, seed=seed)
            for t, s in stats.items():
                if t.startswith("_"):
                    continue
                assert s["best_cycles"] <= s["greedy_cycles"]


class TestNeverWorseThanGreedy:
    @pytest.mark.parametrize(
        "workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_sa_floor_on_workload(self, workload):
        res = _analysis(workload)
        trace = capture_trace(res.program, cycle_limit=SHORT)
        refined, stats = _search(res, trace, sa_iters=4)
        searched = [t for t in stats if not t.startswith("_")]
        for t in searched:
            assert stats[t]["best_cycles"] <= stats[t]["greedy_cycles"]
        # refined decisions keep the original order and cover every
        # original decision
        assert [d.type_name for d in refined] == \
            [d.type_name for d in res.decisions]


class TestExactSolver:
    def _random_instance(self, rng, nfields):
        fields = [f"f{i}" for i in range(nfields)]
        spec = {f: (rng.choice([1, 2, 4, 8]), rng.choice([1, 2, 4, 8]))
                for f in fields}
        groups = []
        for _ in range(rng.randint(1, 3)):
            members = rng.sample(fields, rng.randint(1, nfields))
            groups.append((rng.uniform(0.1, 10.0), tuple(members)))
        line = rng.choice([16, 32, 64, 128])
        return fields, spec, groups, line

    def test_bb_matches_exhaustive_small(self):
        rng = random.Random(12345)
        for _ in range(120):
            fields, spec, groups, line = self._random_instance(
                rng, rng.randint(2, 6))
            got = bb_order(fields, spec, groups, line)
            want = exhaustive_order(fields, spec, groups, line)
            assert got == want, (fields, spec, groups, line)

    def test_ilp_never_worse_on_mcf(self, mcf_res, mcf_trace):
        _, stats = _search(mcf_res, mcf_trace, engine="ilp")
        for t, s in stats.items():
            if t.startswith("_"):
                continue
            assert s["engine"] == "ilp"
            assert s["best_cycles"] <= s["greedy_cycles"]

    def test_auto_picks_exact_for_small_structs(
            self, mcf_res, mcf_trace):
        _, stats = _search(mcf_res, mcf_trace, engine="auto",
                           ilp_max_fields=64)
        for t, s in stats.items():
            if not t.startswith("_"):
                assert s["engine"] == "ilp"


class TestAnytimeBudget:
    def test_expired_budget_returns_greedy_floor(
            self, mcf_res, mcf_trace):
        # a deadline in the past: SA must stop after its first batch
        # check and still answer with the best layout seen so far
        refined, stats = _search(mcf_res, mcf_trace, budget_s=1e-9)
        searched = [t for t in stats if not t.startswith("_")]
        assert searched
        for t in searched:
            s = stats[t]
            assert s["best_cycles"] <= s["greedy_cycles"]
            assert s["sa"]["budget_expired"]

    def test_zero_budget_means_unbounded(self, mcf_res, mcf_trace):
        _, stats = _search(mcf_res, mcf_trace, budget_s=0.0,
                           sa_iters=2, sa_restarts=0)
        for t, s in stats.items():
            if not t.startswith("_"):
                assert not s["sa"]["budget_expired"]


class TestScoreMemoization:
    def test_repeat_search_hits_summary_cache(
            self, mcf_res, mcf_trace, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        opts = SearchOptions(engine="sa", seed=3, sa_iters=4,
                             sa_restarts=0, budget_s=60.0)

        def once():
            _, stats = run_layout_search(
                mcf_res.program, mcf_res.decisions, mcf_res.legality,
                mcf_res.profiles, opts, cache=cache, trace=mcf_trace)
            return {t: s for t, s in stats.items()
                    if not t.startswith("_")}

        first = once()
        second = once()
        for t in first:
            assert second[t]["best_cycles"] == first[t]["best_cycles"]
            # every score the second run needed was already stored
            assert second[t]["evals"] == 0
            assert second[t]["cache_hits"] > 0

    def test_in_process_memo(self, mcf_trace):
        compiled = precompile(mcf_trace, "node")
        oracle = LayoutOracle(compiled)
        live = tuple(f.name for f in compiled.fields)
        a = oracle.score(Layout((live,)))
        b = oracle.score(Layout((live,)))
        assert a == b
        assert oracle.evals == 1
        assert oracle.memo_hits == 1


class TestPipelineIntegration:
    def test_search_nodes_refine_decisions(self, mcf_res):
        sopts = SearchOptions(engine="sa", seed=3, sa_iters=6,
                              sa_restarts=1, budget_s=60.0)
        res = Compiler(CompilerOptions(search=sopts)) \
            .compile_sources(MCF.sources("train"))
        assert res.ok
        assert "_trace" in res.search
        searched = [t for t in res.search if not t.startswith("_")]
        assert "node" in searched
        for t in searched:
            s = res.search[t]
            assert s["best_cycles"] <= s["greedy_cycles"]
            # the gather popped the decision into the ordinary list
            assert "decision" not in s
        # transformed program still behaves identically
        assert run_program(res.program).stdout == \
            run_program(res.transformed).stdout

    def test_search_off_by_default(self, mcf_res):
        assert mcf_res.search == {}

    def test_greedy_engine_is_decision_identical(self):
        sopts = SearchOptions(engine="greedy")
        res = Compiler(CompilerOptions(search=sopts)) \
            .compile_sources(MCF.sources("train"))
        base = Compiler(CompilerOptions()) \
            .compile_sources(MCF.sources("train"))
        assert [(d.type_name, d.action, d.hot_order, d.cold_fields)
                for d in res.decisions] == \
            [(d.type_name, d.action, d.hot_order, d.cold_fields)
             for d in base.decisions]
        assert res.search  # ... but the report stats are there

    def test_search_excluded_from_options_fingerprint(self):
        plain = CompilerOptions()
        searching = CompilerOptions(search=SearchOptions())
        assert plain.fingerprint() == searching.fingerprint()

    def test_bad_engine_rejected(self):
        class Bogus:
            engine = "magic"
        with pytest.raises(ValueError):
            CompilerOptions(search=Bogus())


class TestSearchOptionsApi:
    def test_frozen(self):
        s = SearchOptions()
        with pytest.raises(Exception):
            s.engine = "ilp"

    def test_wire_round_trip(self):
        s = SearchOptions(engine="auto", budget_s=2.5, seed=9,
                          sa_restarts=0, ts=12.5, peel_mode="affinity")
        d = s.to_dict()
        assert SearchOptions.from_dict(d) == s
        # defaults stay off the wire
        assert "sa_alpha" not in d

    def test_nested_in_compile_options(self):
        opts = CompileOptions(search=SearchOptions(engine="ilp"))
        req = CompileRequest(op="transform",
                             sources=[("a.c", "int main(){return 0;}")],
                             options=opts)
        wire = req.to_wire()
        back = CompileRequest.from_dict(wire)
        assert back.options.search == opts.search
        copts = back.options.compiler_options("full")
        assert copts.search == opts.search

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError) as ei:
            SearchOptions.from_dict({"engine": "sa", "wat": 1})
        assert "wat" in ei.value.detail["unknown_fields"]
        with pytest.raises(ApiError):
            CompileOptions.from_dict({"search": {"turbo": True}})

    def test_validation(self):
        with pytest.raises(ApiError):
            SearchOptions(engine="bogus")
        with pytest.raises(ApiError):
            SearchOptions(budget_s=-1.0)
        with pytest.raises(ApiError):
            SearchOptions(sa_alpha=1.5)
        with pytest.raises(ApiError):
            SearchOptions(peel_mode="weird")

    def test_from_cli(self):
        s = SearchOptions.from_cli("engine=sa,budget=10s,seed=7")
        assert (s.engine, s.budget_s, s.seed) == ("sa", 10.0, 7)
        assert SearchOptions.from_cli("ilp").engine == "ilp"
        s2 = SearchOptions.from_cli("ts=5,peel=hot-cold,iters=3")
        assert (s2.ts, s2.peel_mode, s2.sa_iters) == (5.0, "hot-cold", 3)
        with pytest.raises(ApiError):
            SearchOptions.from_cli("warp=9")

    def test_search_type_respects_greedy_legality(self, mcf_res):
        # search_mode applies the same pre-checks as the greedy
        # heuristics: a blocked type is not searchable
        for name, info in mcf_res.legality.types.items():
            mode, _ = search_mode(mcf_res.program, info, info.record)
            if not info.is_legal():
                assert mode is None
