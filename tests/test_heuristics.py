"""Heuristics-engine tests: §2.4 decision rules and the grouping cost
model."""

import pytest

from repro.frontend import Program
from repro.transform.heuristics import (
    HeuristicParams, TransformDecision, decide_transforms,
    apply_decisions, peel_groups, split_threshold, grouping_cost,
    candidate_groupings, piece_size,
)
from repro.core.pipeline import compile_program, CompilerOptions
from repro.runtime import run_program


def compiled(src, **opt_kw):
    return compile_program(Program.from_source(src),
                           CompilerOptions(**opt_kw) if opt_kw else None)


HOT_COLD = """
struct rec { long hot1; long hot2; long cold1; long cold2; long cold3; };
struct rec *R;
int main() {
    int i; int it; long s = 0;
    R = (struct rec*) malloc(100 * sizeof(struct rec));
    for (i = 0; i < 100; i++) {
        R[i].hot1 = i; R[i].hot2 = i; R[i].cold1 = i;
        R[i].cold2 = i; R[i].cold3 = i;
    }
    for (it = 0; it < 20; it++) {
        for (i = 0; i < 100; i++) {
            long w = 0;
            while (w < 2) { s += R[i].hot1 + R[i].hot2; w++; }
        }
    }
    for (i = 0; i < 100; i++) s += R[i].cold1 + R[i].cold2 + R[i].cold3;
    printf("%ld", s);
    return 0;
}
"""


class TestThresholds:
    def test_split_threshold_by_scheme(self):
        params = HeuristicParams()
        assert split_threshold("PBO", params) == 3.0
        assert split_threshold("PPBO", params) == 3.0
        assert split_threshold("ISPBO", params) == 7.5
        assert split_threshold("SPBO", params) == 7.5


class TestDecisions:
    def test_peelable_hot_cold_type_is_peeled(self):
        res = compiled(HOT_COLD)
        d = res.decision_for("rec")
        assert d.action == "peel"
        assert d.pointer == "R"

    def test_split_when_not_peelable(self):
        src = HOT_COLD.replace(
            "struct rec *R;", "struct rec *R; struct rec *alias;")
        res = compiled(src)
        d = res.decision_for("rec")
        assert d.action == "split"
        assert set(d.cold_fields) == {"cold1", "cold2", "cold3"}

    def test_illegal_type_untouched(self):
        src = HOT_COLD.replace(
            'printf("%ld", s);',
            'fwrite(R, sizeof(struct rec), 100, NULL); '
            'printf("%ld", s);')
        res = compiled(src)
        d = res.decision_for("rec")
        assert d.action == "none"
        assert "illegal" in d.notes[0]

    def test_not_allocated_untouched(self):
        src = """
        struct rec { long a; long b; };
        struct rec g;
        int main() { g.a = 1; return (int) g.a; }
        """
        res = compiled(src)
        assert res.decision_for("rec").action == "none"

    def test_single_object_allocation_untouched(self):
        src = """
        struct rec { long a; long b; };
        struct rec *g;
        int main() {
            g = (struct rec*) malloc(sizeof(struct rec));
            g->a = 1;
            return 0;
        }
        """
        res = compiled(src)
        assert res.decision_for("rec").action == "none"

    def test_realloc_untouched(self):
        src = """
        struct rec { long a; long b; };
        struct rec *g;
        int main() {
            g = (struct rec*) malloc(8 * sizeof(struct rec));
            g = (struct rec*) realloc(g, 16 * sizeof(struct rec));
            g[0].a = 1;
            return 0;
        }
        """
        res = compiled(src)
        d = res.decision_for("rec")
        assert d.action == "none"
        assert any("realloc" in n for n in d.notes)

    def test_one_cold_field_not_split(self):
        """A single cold field cannot amortize the link pointer."""
        src = HOT_COLD.replace(
            "struct rec *R;", "struct rec *R; struct rec *alias;") \
            .replace("s += R[i].cold1 + R[i].cold2 + R[i].cold3;",
                     "s += R[i].cold1;") \
            .replace("R[i].cold2 = i; R[i].cold3 = i;", "")
        # cold2/cold3 become dead: removed, but only cold1 is cold-live
        res = compiled(src)
        d = res.decision_for("rec")
        assert d.action in ("dead", "none")

    def test_dead_bitfield_kept_by_default(self):
        src = """
        struct rec { long used; int flags : 3; long pad; };
        struct rec *g;
        int main() {
            int i;
            g = (struct rec*) malloc(8 * sizeof(struct rec));
            for (i = 0; i < 8; i++) { g[i].used = i; g[i].flags = 1; }
            long s = 0;
            for (i = 0; i < 8; i++) s += g[i].used + g[i].pad;
            printf("%ld", s);
            return 0;
        }
        """
        res = compiled(src)
        d = res.decision_for("rec")
        assert "flags" not in d.dead_fields

    def test_fields_affected_counts(self):
        d = TransformDecision(type_name="t", action="split",
                              cold_fields=["a", "b"],
                              dead_fields=["c"])
        assert d.fields_affected == 3


class TestCostModel:
    def test_piece_size_includes_padding(self):
        p = Program.from_source(
            "struct s { char c; double d; long l; }; "
            "int main() { struct s v; v.c = 1; return v.c; }")
        rec = p.record("s")
        assert piece_size(rec, ["c", "d"]) == 16
        assert piece_size(rec, ["c"]) == 1

    def test_sequential_favors_dense_pieces(self):
        res = compiled(HOT_COLD)
        prof = res.profiles["rec"]
        live = [f.name for f in prof.record.fields]
        params = HeuristicParams()
        one = grouping_cost(prof, [live])
        per_field = grouping_cost(prof, [[f] for f in live])
        # sequential sweeps: smaller pieces mean less line traffic
        assert per_field < one
        _ = params

    def test_random_access_favors_grouping(self):
        src = """
        struct t { double x; double y; };
        struct idx { long at; };
        struct t *data;
        struct idx *order;
        int main() {
            int k; int it; double s = 0.0;
            data = (struct t*) malloc(64 * sizeof(struct t));
            order = (struct idx*) malloc(64 * sizeof(struct idx));
            for (k = 0; k < 64; k++) order[k].at = (k * 7) % 64;
            for (it = 0; it < 9; it++)
                for (k = 0; k < 64; k++) {
                    s += data[order[k].at].x * data[order[k].at].y;
                }
            printf("%.1f", s);
            return 0;
        }
        """
        res = compiled(src)
        prof = res.profiles["t"]
        grouped = grouping_cost(prof, [["x", "y"]])
        per_field = grouping_cost(prof, [["x"], ["y"]])
        assert grouped < per_field

    def test_candidate_groupings_cover_live_fields(self):
        res = compiled(HOT_COLD)
        prof = res.profiles["rec"]
        live = [f.name for f in prof.record.fields]
        cands = candidate_groupings(prof, live, [], HeuristicParams())
        for grouping in cands.values():
            flat = sorted(f for g in grouping for f in g)
            assert flat == sorted(live)

    def test_peel_modes(self):
        res = compiled(HOT_COLD)
        prof = res.profiles["rec"]
        live = [f.name for f in prof.record.fields]
        cold = ["cold1", "cold2", "cold3"]
        pf = peel_groups(prof, live, cold,
                         HeuristicParams(peel_mode="per-field"))
        assert pf == [[f] for f in live]
        hc = peel_groups(prof, live, cold,
                         HeuristicParams(peel_mode="hot-cold"))
        assert hc == [["hot1", "hot2"], cold]

    def test_unknown_mode_raises(self):
        res = compiled(HOT_COLD)
        prof = res.profiles["rec"]
        from repro.transform.common import TransformError
        with pytest.raises(TransformError):
            peel_groups(prof, ["hot1"], [],
                        HeuristicParams(peel_mode="bogus"))


class TestApplyDecisions:
    def test_apply_preserves_semantics(self):
        res = compiled(HOT_COLD)
        r0 = run_program(res.program)
        r1 = run_program(res.transformed)
        assert r0.stdout == r1.stdout

    def test_no_decisions_identity(self):
        p = Program.from_source("int main() { return 0; }")
        assert apply_decisions(p, []) is p

    def test_multiple_types_transformed_in_sequence(self):
        src = """
        struct a { double x; double y; };
        struct b { long p; long q; long r; };
        struct a *A;
        struct b *B;
        int main() {
            int i; int it; double s = 0.0;
            A = (struct a*) malloc(50 * sizeof(struct a));
            B = (struct b*) malloc(50 * sizeof(struct b));
            for (i = 0; i < 50; i++) {
                A[i].x = i * 0.5; A[i].y = 0.0;
                B[i].p = i; B[i].q = -i; B[i].r = 2 * i;
            }
            for (it = 0; it < 10; it++)
                for (i = 0; i < 50; i++)
                    s += A[i].x + (double) B[i].p;
            printf("%.1f", s);
            return 0;
        }
        """
        res = compiled(src)
        transformed = [d for d in res.decisions if d.transformed]
        assert len(transformed) >= 2
        assert run_program(res.program).stdout == \
            run_program(res.transformed).stdout


class TestStandaloneReorder:
    """The §5 extension: opt-in field reordering without splitting."""

    BIG = """
    struct wide {
        long c0; long hot_a; long c1; long c2; long c3; long c4;
        long c5; long c6; long c7; long c8; long c9; long c10;
        long c11; long c12; long c13; long c14; long c15; long hot_b;
    };
    struct wide *W;
    struct wide *W2;
    int main() {
        int i; int it; long s = 0;
        W = (struct wide*) malloc(400 * sizeof(struct wide));
        W2 = W;
        for (i = 0; i < 400; i++) { W2[i].hot_a = i; W2[i].hot_b = -i;
            W2[i].c0 = i; W2[i].c7 = i; W2[i].c15 = i; }
        for (it = 0; it < 12; it++) {
            for (i = 0; i < 400; i++) {
                long at = (i * 31) % 400;
                s += W[at].hot_a * W[at].hot_b;
            }
            /* the filler fields stay warm (above T_s) but not hot:
               no split, no dead removal — reordering is all there is */
            for (i = 0; i < 400; i += 8) {
                s += W[i].c0 + W[i].c1 + W[i].c2 + W[i].c3 + W[i].c4
                    + W[i].c5 + W[i].c6 + W[i].c7 + W[i].c8 + W[i].c9
                    + W[i].c10 + W[i].c11 + W[i].c12 + W[i].c13
                    + W[i].c14 + W[i].c15;
            }
        }
        printf("%ld", s);
        return 0;
    }
    """

    def test_disabled_by_default(self):
        res = compiled(self.BIG)
        d = res.decision_for("wide")
        assert d.action != "reorder"

    def test_reorders_when_enabled(self):
        res = compiled(self.BIG,
                       params=HeuristicParams(standalone_reorder=True))
        d = res.decision_for("wide")
        assert d.action == "reorder"
        new = res.transformed.record("wide")
        # hot fields packed onto the leading cache line
        assert new.field("hot_a").offset < 128
        assert new.field("hot_b").offset < 128

    def test_semantics_preserved(self):
        res = compiled(self.BIG,
                       params=HeuristicParams(standalone_reorder=True))
        assert run_program(res.program).stdout == \
            run_program(res.transformed).stdout

    def test_reorder_pays_off(self):
        res = compiled(self.BIG,
                       params=HeuristicParams(standalone_reorder=True))
        before = run_program(res.program)
        after = run_program(res.transformed)
        assert after.cycles < before.cycles
