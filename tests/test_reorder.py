"""Field reordering tests."""

import pytest

from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import (
    reorder_fields, reorder_record, hotness_order, affinity_packed_order,
    TransformError,
)

SRC = """
struct rec { char tag; double big; int mid; long wide; };
struct rec *R;
int main() {
    int i; long s = 0;
    R = (struct rec*) malloc(20 * sizeof(struct rec));
    for (i = 0; i < 20; i++) {
        R[i].tag = (char) i;
        R[i].big = i * 1.5;
        R[i].mid = -i;
        R[i].wide = i * 7;
    }
    for (i = 0; i < 20; i++)
        s += (long) R[i].tag + R[i].mid + R[i].wide + (long) R[i].big;
    printf("%ld", s);
    return 0;
}
"""


class TestReorderRecord:
    def test_order_applied(self):
        p = Program.from_source(SRC)
        rec = reorder_record(p.record("rec"),
                             ["big", "wide", "mid", "tag"])
        assert rec.field_names() == ["big", "wide", "mid", "tag"]

    def test_reorder_can_shrink_padding(self):
        p = Program.from_source(SRC)
        old = p.record("rec")
        packed = reorder_record(old, ["big", "wide", "mid", "tag"])
        assert packed.size <= old.size

    def test_bad_order_rejected(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            reorder_record(p.record("rec"), ["big", "wide"])

    def test_original_untouched(self):
        p = Program.from_source(SRC)
        old_names = p.record("rec").field_names()
        reorder_record(p.record("rec"), list(reversed(old_names)))
        assert p.record("rec").field_names() == old_names


class TestReorderProgram:
    def test_output_preserved(self):
        p = Program.from_source(SRC)
        p2 = reorder_fields(p, p.record("rec"),
                            ["big", "wide", "mid", "tag"])
        assert run_program(p).stdout == run_program(p2).stdout

    def test_offsets_change(self):
        p = Program.from_source(SRC)
        p2 = reorder_fields(p, p.record("rec"),
                            ["big", "wide", "mid", "tag"])
        assert p2.record("rec").field("big").offset == 0
        assert p.record("rec").field("big").offset != 0


class TestOrderHeuristics:
    def test_hotness_order_sorts_descending(self):
        p = Program.from_source(SRC)
        order = hotness_order(p.record("rec"),
                              {"tag": 1.0, "big": 50.0, "mid": 10.0,
                               "wide": 5.0})
        assert order == ["big", "mid", "wide", "tag"]

    def test_hotness_order_stable_on_ties(self):
        p = Program.from_source(SRC)
        order = hotness_order(p.record("rec"), {})
        assert order == ["tag", "big", "mid", "wide"]

    def test_affinity_packed_order_groups_affine(self):
        p = Program.from_source(SRC)
        affinity = {("big", "tag"): 100.0}
        order = affinity_packed_order(
            p.record("rec"),
            {"big": 10.0, "tag": 1.0, "mid": 5.0, "wide": 4.0},
            affinity)
        assert order[0] == "big"
        assert order[1] == "tag"     # pulled next by affinity

    def test_affinity_packed_order_is_permutation(self):
        p = Program.from_source(SRC)
        order = affinity_packed_order(p.record("rec"), {}, {})
        assert sorted(order) == sorted(p.record("rec").field_names())
