"""Weight-estimation tests: SPBO flow solving, ISPBO propagation, and
measured (PBO) weights."""

import pytest

from repro.frontend import Program
from repro.ir import lower_program, build_call_graph, find_loops
from repro.profit import (
    estimate_local, estimate_spbo, estimate_ispbo, estimate_ispbo_w,
    propagate_call_counts, edge_probabilities, collect_feedback,
    match_feedback, BACK_PROB_INT,
)


def setup(src):
    p = Program.from_source(src)
    cfgs = lower_program(p)
    cg = build_call_graph(cfgs, p)
    return p, cfgs, cg


class TestLocalEstimation:
    def test_straight_line_all_one(self):
        _, cfgs, _ = setup("int f() { int a = 1; return a; } "
                           "int main() { return 0; }")
        fw = estimate_local(cfgs["f"])
        for b in cfgs["f"].reachable_blocks():
            assert fw.block_count(b.id) == pytest.approx(1.0)

    def test_branch_splits_half(self):
        _, cfgs, _ = setup(
            "int f(int x) { int y; if (x) y = 1; else y = 2; return y; }"
            "int main() { return 0; }")
        fw = estimate_local(cfgs["f"])
        halves = [c for c in fw.block.values()
                  if abs(c - 0.5) < 1e-9]
        assert len(halves) >= 2

    def test_loop_body_multiplied_about_8x(self):
        _, cfgs, _ = setup(
            "int f() { int i; int s = 0;"
            "for (i = 0; i < 100; i++) s += i; return s; }"
            "int main() { return 0; }")
        cfg = cfgs["f"]
        fw = estimate_local(cfg)
        nest = find_loops(cfg)
        header_count = fw.block_count(nest.loops[0].header.id)
        # 1 / (1 - 0.88) ~ 8.33
        assert header_count == pytest.approx(1.0 / (1.0 - BACK_PROB_INT),
                                             rel=0.01)

    def test_nested_loop_multiplies(self):
        _, cfgs, _ = setup(
            "int f() { int i; int j; int s = 0;"
            "for (i = 0; i < 9; i++) for (j = 0; j < 9; j++) s += j;"
            "return s; }"
            "int main() { return 0; }")
        cfg = cfgs["f"]
        fw = estimate_local(cfg)
        nest = find_loops(cfg)
        inner = next(l for l in nest.loops if l.depth == 2)
        outer = next(l for l in nest.loops if l.depth == 1)
        ratio = fw.block_count(inner.header.id) / \
            fw.block_count(outer.header.id)
        assert 6.0 < ratio < 10.0

    def test_flow_conservation(self):
        """Frequency into each block equals frequency out (except
        entry/exit)."""
        _, cfgs, _ = setup(
            "int f(int x) { int s = 0; int i;"
            "for (i = 0; i < x; i++) { if (i & 1) s += i; else s -= i; }"
            "while (s > 10) s /= 2; return s; }"
            "int main() { return 0; }")
        cfg = cfgs["f"]
        fw = estimate_local(cfg)
        for b in cfg.reachable_blocks():
            if b is cfg.entry or b is cfg.exit:
                continue
            inflow = sum(fw.edge.get((e.src.id, b.id), 0.0)
                         for e in b.preds)
            outflow = sum(fw.edge.get((b.id, e.dst.id), 0.0)
                          for e in b.succs)
            assert inflow == pytest.approx(outflow, rel=1e-6)

    def test_fp_loop_higher_probability(self):
        src = ("double f() { double s = 0.0; int i;"
               "for (i = 0; i < 9; i++) s += 0.5; return s; }"
               "int main() { return 0; }")
        _, cfgs, _ = setup(src)
        cfg = cfgs["f"]
        nest = find_loops(cfg)
        probs = edge_probabilities(cfg, nest)
        back_probs = [p for k, p in probs.items() if p > 0.9]
        assert back_probs    # the FP back edge uses 0.93


class TestISPBO:
    SRC = """
    int work(int x) { return x * 2; }
    int main() {
        int i; int s = 0;
        for (i = 0; i < 100; i++) { s += work(i); }
        return s;
    }
    """

    def test_callee_scaled_by_call_frequency(self):
        _, cfgs, cg = setup(self.SRC)
        local = estimate_spbo(cfgs)
        n_g = propagate_call_counts(local, cg)
        assert n_g["main"] == 1.0
        # the call site is in the loop body, which executes
        # p / (1 - p) times per entry
        expected = BACK_PROB_INT / (1.0 - BACK_PROB_INT)
        assert n_g["work"] == pytest.approx(expected, rel=0.01)

    def test_exponent_improves_separation(self):
        _, cfgs, cg = setup(self.SRC)
        with_e = estimate_ispbo(cfgs, cg)
        without = estimate_ispbo(cfgs, cg, exponent=1.0)
        body = cfgs["work"].reachable_blocks()[1].id
        assert with_e.block_count("work", body) > \
            without.block_count("work", body)

    def test_scheme_names(self):
        _, cfgs, cg = setup(self.SRC)
        assert estimate_ispbo(cfgs, cg).scheme == "ISPBO"
        assert estimate_ispbo(cfgs, cg, exponent=1.0).scheme == "ISPBO.NO"
        assert estimate_ispbo_w(cfgs, cg).scheme == "ISPBO.W"

    def test_recursion_handled(self):
        src = """
        int rec(int n) { if (n <= 0) return 0; return rec(n - 1) + 1; }
        int main() { return rec(10); }
        """
        _, cfgs, cg = setup(src)
        local = estimate_spbo(cfgs)
        n_g = propagate_call_counts(local, cg)
        assert n_g["rec"] > 0.0          # terminates, no blow-up

    def test_uncalled_function_weight_zero(self):
        src = """
        int orphan(int x) { return x; }
        int main() { return 0; }
        """
        _, cfgs, cg = setup(src)
        pw = estimate_ispbo(cfgs, cg)
        body_blocks = cfgs["orphan"].reachable_blocks()
        assert all(pw.block_count("orphan", b.id) == 0.0
                   for b in body_blocks)


class TestPBOWeights:
    SRC = """
    int main() {
        int i; long s = 0;
        for (i = 0; i < 37; i++) { if (i % 3 == 0) s += i; }
        printf("%ld", s);
        return 0;
    }
    """

    def test_edge_counts_are_exact(self):
        p = Program.from_source(self.SRC)
        cfgs = lower_program(p)
        fb = collect_feedback(p, cfgs=cfgs)
        pw = match_feedback(cfgs, fb)
        cfg = cfgs["main"]
        nest = find_loops(cfg)
        header = nest.loops[0].header
        assert pw.block_count("main", header.id) == pytest.approx(38.0)

    def test_pbo_more_accurate_than_static(self):
        p = Program.from_source(self.SRC)
        cfgs = lower_program(p)
        fb = collect_feedback(p, cfgs=cfgs)
        pw = match_feedback(cfgs, fb)
        static = estimate_spbo(cfgs)
        cfg = cfgs["main"]
        nest = find_loops(cfg)
        header = nest.loops[0].header.id
        # static says ~8.3; measured says 38
        assert pw.block_count("main", header) > \
            static.block_count("main", header)
