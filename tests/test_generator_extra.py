"""Extra failure-injection and edge-case tests across modules."""

import pytest

from repro.frontend import Program, ParseError, SemaError, LexError
from repro.runtime import run_program, Machine, CompiledProgram
from repro.runtime.codegen import CompileError
from repro.transform import retype, program_sources
from repro.workloads.base import render


class TestRenderer:
    def test_substitution(self):
        assert render("x = @a@ + @b@;", {"a": 1, "b": 2}) == \
            "x = 1 + 2;"

    def test_unsubstituted_placeholder_raises(self):
        with pytest.raises(KeyError):
            render("x = @missing@;", {})

    def test_no_placeholders_passthrough(self):
        assert render("a % b", {}) == "a % b"


class TestFrontendErrorPaths:
    def test_lex_error_propagates(self):
        with pytest.raises(LexError):
            Program.from_source("int main() { return `; }")

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            Program.from_source("int main( { return 0; }")

    def test_sema_error_propagates(self):
        with pytest.raises(SemaError):
            Program.from_source("int main() { return ghost; }")

    def test_break_outside_loop(self):
        from repro.ir import lower_function
        p = Program.from_source("int f() { break; return 0; }")
        with pytest.raises(ValueError):
            lower_function(p.function("f"))


class TestRuntimeEdgeCases:
    def test_program_without_main_rejected(self):
        p = Program.from_source("int helper() { return 1; }")
        m = Machine()
        compiled = CompiledProgram(p, m)
        with pytest.raises(CompileError):
            compiled.run()

    def test_alternate_entry_point(self):
        p = Program.from_source("int helper() { return 41; }")
        r = run_program(p, entry="helper")
        assert r.exit_code == 41

    def test_non_constant_global_init_rejected(self):
        p = Program.from_source(
            "int f() { return 1; } int g = f(); "
            "int main() { return g; }")
        with pytest.raises(CompileError):
            run_program(p)

    def test_null_function_pointer_call_exits(self):
        p = Program.from_source(
            "int (*fp)(void);"
            "int main() { return fp(); }")
        r = run_program(p)
        assert r.exit_code == 127

    def test_deep_recursion_within_limits(self):
        p = Program.from_source(
            "long down(long n) { if (n == 0) return 0; "
            "return down(n - 1) + 1; }"
            "int main() { printf(\"%ld\", down(200)); return 0; }")
        assert run_program(p).stdout == "200"

    def test_struct_local_reset_between_calls(self):
        # stack addresses are reused: each call re-initializes
        p = Program.from_source("""
        long probe(long v) {
            struct box { long slot; } b;
            b.slot = v;
            return b.slot;
        }
        int main() {
            printf("%ld %ld", probe(1), probe(2));
            return 0;
        }
        """)
        assert run_program(p).stdout == "1 2"

    def test_global_pointer_to_struct_array_of_arrays(self):
        p = Program.from_source("""
        struct cell { long grid[4]; };
        struct cell *c;
        int main() {
            c = (struct cell*) malloc(2 * sizeof(struct cell));
            c[1].grid[3] = 9;
            printf("%ld", c[1].grid[3]);
            return 0;
        }
        """)
        assert run_program(p).stdout == "9"

    def test_ternary_as_call_argument(self, ):
        p = Program.from_source("""
        int pick(int v) { return v * 10; }
        int main() {
            int x = 1;
            printf("%d", pick(x ? 3 : 4));
            return 0;
        }
        """)
        assert run_program(p).stdout == "30"


class TestRetypeEdgeCases:
    def test_retype_empty_record_skipped(self):
        p = Program.from_source(
            "struct fwd; struct use_ { long v; }; "
            "int main() { struct use_ u; u.v = 1; return (int) u.v; }")
        p2 = retype(p.units, p.records)
        assert run_program(p2).exit_code == 1

    def test_program_sources_stable_names(self):
        p = Program.from_sources([
            ("alpha.c", "int main() { return 0; }"),
            ("beta.c", "int side(void) { return 1; }"),
        ])
        names = [n for n, _ in program_sources(p)]
        assert names == ["alpha.c", "beta.c"]
