"""Unit tests for the diagnostics engine and the CLI's structured
error reporting (``--strict``, ``--no-verify``, exit codes)."""

import pytest

from repro.cli import OptionBundle, _first_divergence, _options, main
from repro.core import (
    CODE_CONTAINED, CODE_ROLLBACK, CompilerOptions, Diagnostic,
    DiagnosticEngine, FatalCompilerError, SourceLoc, inject_fault,
)

# ---------------------------------------------------------------------------
# Diagnostic / SourceLoc
# ---------------------------------------------------------------------------


class TestDiagnostic:
    def test_format_full(self):
        d = Diagnostic("warning", "legality", "pass crashed",
                       loc=SourceLoc("a.c", 7), type_name="node",
                       code=CODE_CONTAINED, action="fix the pass")
        assert d.format() == ("repro: warning: a.c:7: [legality] "
                              "struct node: pass crashed (fix the pass)")

    def test_format_minimal(self):
        d = Diagnostic("note", "verify", "skipped")
        assert d.format() == "repro: note: [verify] skipped"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("catastrophe", "x", "y")

    def test_sourceloc_rendering(self):
        assert str(SourceLoc()) == ""
        assert str(SourceLoc("a.c")) == "a.c"
        assert str(SourceLoc("a.c", 3)) == "a.c:3"
        assert str(SourceLoc(None, 3)) == "<input>:3"


class TestEngine:
    def test_emit_and_query(self):
        eng = DiagnosticEngine()
        eng.note("fe", "hello")
        eng.warning("legality", "contained", code=CODE_CONTAINED)
        eng.error("parse", "broken", unit="a.c", line=2)
        assert len(eng) == 3
        assert not eng.by_severity("fatal")
        assert len(eng.warnings()) == 1
        assert len(eng.errors()) == 1
        assert eng.has_errors
        assert [d.phase for d in eng.by_phase("legality")] == \
            ["legality"]
        assert eng.by_code(CODE_CONTAINED)
        assert eng.contained()
        assert eng.rollbacks() == []

    def test_render_severity_floor(self):
        eng = DiagnosticEngine()
        eng.note("fe", "minor")
        eng.error("parse", "major")
        out = eng.render("warning")
        assert "major" in out and "minor" not in out
        assert "minor" in eng.render("note")

    def test_merge(self):
        a, b = DiagnosticEngine(), DiagnosticEngine()
        b.warning("be", "w")
        a.merge(b)
        assert len(a) == 1

    def test_overflow_cap(self):
        eng = DiagnosticEngine(max_diagnostics=2)
        for i in range(5):
            eng.note("fe", f"n{i}")
        assert len(eng) == 2
        assert "suppressed" in eng.render()

    def test_summary(self):
        eng = DiagnosticEngine()
        eng.error("parse", "x")
        eng.warning("be", "y")
        assert eng.summary() == "1 error(s), 1 warning(s), 0 note(s)"


class TestDeduplication:
    """Identical repeats (retry attempts re-reporting the same fault)
    collapse into one entry with an occurrence count."""

    def test_identical_repeats_collapse(self):
        eng = DiagnosticEngine()
        for _ in range(3):
            eng.warning("apply", "pass failed", unit="a.c", line=4,
                        code=CODE_CONTAINED)
        assert len(eng) == 1
        assert eng.diagnostics[0].count == 3
        assert "[x3]" in eng.render()

    def test_different_location_not_collapsed(self):
        eng = DiagnosticEngine()
        eng.error("parse", "bad token", unit="a.c", line=1)
        eng.error("parse", "bad token", unit="a.c", line=2)
        eng.error("parse", "bad token", unit="b.c", line=1)
        assert len(eng) == 3
        assert all(d.count == 1 for d in eng)

    def test_different_severity_or_code_not_collapsed(self):
        eng = DiagnosticEngine()
        eng.warning("legality", "demoted")
        eng.note("legality", "demoted")
        eng.warning("legality", "demoted", code=CODE_CONTAINED)
        assert len(eng) == 3

    def test_emit_returns_the_collapsed_entry(self):
        eng = DiagnosticEngine()
        first = eng.warning("be", "w")
        second = eng.warning("be", "w")
        assert first is second
        assert first.count == 2

    def test_merge_deduplicates(self):
        a, b = DiagnosticEngine(), DiagnosticEngine()
        a.warning("be", "w")
        b.warning("be", "w")
        b.warning("be", "other")
        a.merge(b)
        assert len(a) == 2
        assert a.diagnostics[0].count == 2

    def test_count_survives_the_wire_format(self):
        eng = DiagnosticEngine()
        eng.warning("apply", "pass failed", unit="a.c", line=4)
        eng.warning("apply", "pass failed", unit="a.c", line=4)
        blob = eng.diagnostics[0].to_dict()
        back = Diagnostic.from_dict(blob)
        assert back.count == 2
        assert back.loc.unit == "a.c" and back.loc.line == 4
        assert "[x2]" in back.format()

    def test_no_single_count_marker(self):
        d = Diagnostic("note", "verify", "skipped")
        assert "[x" not in d.format()


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

DEMO = """
struct item { long key; long val; long rare1; long rare2; double dead; };
struct item *tab;
int main() {
    int i; int it; long s = 0;
    tab = (struct item*) malloc(300 * sizeof(struct item));
    for (i = 0; i < 300; i++) { tab[i].key = i; tab[i].val = 2 * i;
        tab[i].rare1 = i; tab[i].rare2 = -i; tab[i].dead = 0.1; }
    for (it = 0; it < 10; it++)
        for (i = 0; i < 300; i++) s += tab[i].key + tab[i].val;
    for (i = 0; i < 300; i++) s += tab[i].rare1 - tab[i].rare2;
    printf("s=%ld\\n", s);
    return 0;
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestOptionsBundle:
    def test_named_tuple_fields(self, demo_file):
        args = main.__globals__["build_parser"]().parse_args(
            ["analyze", demo_file])
        bundle = _options(args)
        assert isinstance(bundle, OptionBundle)
        assert isinstance(bundle.options, CompilerOptions)
        assert bundle.feedback is None

    def test_verify_default_per_command(self, demo_file):
        parser = main.__globals__["build_parser"]()
        for cmd, want in [("analyze", False), ("transform", True),
                          ("compare", True)]:
            args = parser.parse_args([cmd, demo_file])
            assert _options(args).options.verify_transforms is want

    def test_no_verify_flag(self, demo_file):
        parser = main.__globals__["build_parser"]()
        args = parser.parse_args(["transform", "--no-verify",
                                  demo_file])
        assert _options(args).options.verify_transforms is False


class TestCliDiagnostics:
    def test_contained_fault_printed_and_exit_0(self, demo_file,
                                                capsys):
        with inject_fault("legality", "raise"):
            rc = main(["analyze", demo_file])
        assert rc == 0       # degraded, not failed
        err = capsys.readouterr().err
        assert "repro: warning:" in err
        assert "legality" in err

    def test_strict_flag_exits_1(self, demo_file, capsys):
        with inject_fault("legality", "raise"):
            rc = main(["analyze", "--strict", demo_file])
        assert rc == 1
        assert "repro: fatal:" in capsys.readouterr().err

    def test_transform_with_verification(self, demo_file, capsys):
        assert main(["transform", demo_file]) == 0
        out = capsys.readouterr().out
        assert "struct item" in out

    def test_compare_rolls_back_broken_transform(self, tmp_path,
                                                 capsys):
        src = tmp_path / "trap.c"
        src.write_text("""
struct pt { long a; long b; long c; long d; };
struct pt *P;
int main() {
    long *raw; long s = 0; int i; int it;
    P = (struct pt*) malloc(16 * sizeof(struct pt));
    for (i = 0; i < 16; i++) {
        P[i].a = i; P[i].b = 2 * i; P[i].c = 100 + i;
        P[i].d = 200 + i;
    }
    for (it = 0; it < 20; it++)
        for (i = 0; i < 16; i++) s += P[i].a + P[i].b;
    for (i = 0; i < 16; i++) s += P[i].c - P[i].d;
    raw = (long *) P;
    s += raw[2];
    printf("s=%ld\\n", s);
    return 0;
}
""")
        with inject_fault("legality", "corrupt"):
            rc = main(["compare", "--ts", "30", str(src)])
        captured = capsys.readouterr()
        assert rc == 0                    # verified result is correct
        assert "rolled back: pt" in captured.out
        assert "rolled back split" in captured.err

    def test_compare_mismatch_reports_diverging_line(self, tmp_path,
                                                     capsys):
        # same trap, but verification disabled: compare must catch it
        src = tmp_path / "trap.c"
        src.write_text("""
struct pt { long a; long b; long c; long d; };
struct pt *P;
int main() {
    long *raw; long s = 0; int i; int it;
    P = (struct pt*) malloc(16 * sizeof(struct pt));
    for (i = 0; i < 16; i++) {
        P[i].a = i; P[i].b = 2 * i; P[i].c = 100 + i;
        P[i].d = 200 + i;
    }
    for (it = 0; it < 20; it++)
        for (i = 0; i < 16; i++) s += P[i].a + P[i].b;
    for (i = 0; i < 16; i++) s += P[i].c - P[i].d;
    raw = (long *) P;
    s += raw[2];
    printf("s=%ld\\n", s);
    return 0;
}
""")
        with inject_fault("legality", "corrupt"):
            rc = main(["compare", "--ts", "30", "--no-verify",
                       str(src)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "output-mismatch" not in err   # code is machine field
        assert "changed program output" in err
        assert "line 1:" in err


class TestFirstDivergence:
    def test_diverging_line(self):
        assert _first_divergence("a\nb\nc", "a\nX\nc") == \
            "line 2: 'b' != 'X'"

    def test_truncation(self):
        assert _first_divergence("a\nb", "a") == \
            "line 2: output truncated (2 vs 1 lines)"
