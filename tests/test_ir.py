"""CFG lowering, dominators, loop nesting, and call graph tests."""

from repro.frontend import Program
from repro.ir import (
    lower_function, lower_program, immediate_dominators, dominates,
    find_loops, build_call_graph,
)


def cfg_of(src, name="f"):
    return lower_function(Program.from_source(src).function(name))


class TestLowering:
    def test_straight_line_single_path(self):
        cfg = cfg_of("int f() { int a = 1; int b = 2; return a + b; }")
        blocks = cfg.reachable_blocks()
        assert cfg.entry in blocks
        # one path entry -> body -> exit
        assert any(b.is_return for b in blocks)

    def test_if_produces_branch(self):
        cfg = cfg_of("int f(int x) { if (x) return 1; return 2; }")
        branches = [b for b in cfg.blocks if b.term
                    and b.term[0] == "branch"]
        assert len(branches) == 1
        kinds = {e.kind for e in branches[0].succs}
        assert kinds == {"true", "false"}

    def test_while_has_back_edge(self):
        cfg = cfg_of("int f(int n) { while (n > 0) n--; return n; }")
        idom = immediate_dominators(cfg)
        back = [e for b in cfg.blocks for e in b.succs
                if b in idom and dominates(idom, e.dst, e.src)]
        assert len(back) == 1

    def test_for_back_edge_and_exit(self):
        cfg = cfg_of("int f() { int i; int s = 0; "
                     "for (i = 0; i < 4; i++) s += i; return s; }")
        nest = find_loops(cfg)
        assert len(nest.loops) == 1

    def test_do_while(self):
        cfg = cfg_of("int f(int n) { do { n--; } while (n > 0); "
                     "return n; }")
        nest = find_loops(cfg)
        assert len(nest.loops) == 1

    def test_break_leaves_loop(self):
        cfg = cfg_of("int f() { int i = 0; while (1) { i++; "
                     "if (i > 3) break; } return i; }")
        nest = find_loops(cfg)
        assert len(nest.loops) == 1
        # the return block is outside the loop
        ret = next(b for b in cfg.blocks if b.is_return)
        assert ret not in nest.loops[0].blocks

    def test_continue_targets_header_region(self):
        cfg = cfg_of("int f() { int i; int s = 0; "
                     "for (i = 0; i < 9; i++) { if (i & 1) continue; "
                     "s += i; } return s; }")
        nest = find_loops(cfg)
        assert len(nest.loops) == 1

    def test_unreachable_after_return(self):
        cfg = cfg_of("int f() { return 1; return 2; }")
        reachable = set(cfg.reachable_blocks())
        assert len(reachable) < len(cfg.blocks)

    def test_edges_balanced(self):
        cfg = cfg_of("int f(int x) { if (x) x++; else x--; return x; }")
        for b in cfg.reachable_blocks():
            for e in b.succs:
                assert e in e.dst.preds


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("int f(int x) { if (x) { x += 1; } "
                     "while (x < 9) x *= 2; return x; }")
        idom = immediate_dominators(cfg)
        for b in cfg.reachable_blocks():
            assert dominates(idom, cfg.entry, b)

    def test_branch_sides_do_not_dominate_join(self):
        cfg = cfg_of("int f(int x) { int y; if (x) y = 1; else y = 2; "
                     "return y; }")
        idom = immediate_dominators(cfg)
        branch = next(b for b in cfg.blocks
                      if b.term and b.term[0] == "branch")
        t = next(e.dst for e in branch.succs if e.kind == "true")
        ret = next(b for b in cfg.blocks if b.is_return)
        assert not dominates(idom, t, ret)
        assert dominates(idom, branch, ret)


class TestLoopNest:
    def test_nested_depth(self):
        cfg = cfg_of(
            "int f() { int i; int j; int s = 0;"
            "for (i = 0; i < 3; i++)"
            "  for (j = 0; j < 3; j++)"
            "    s += i * j;"
            "return s; }")
        nest = find_loops(cfg)
        assert sorted(l.depth for l in nest.loops) == [1, 2]
        inner = next(l for l in nest.loops if l.depth == 2)
        outer = next(l for l in nest.loops if l.depth == 1)
        assert inner.parent is outer
        assert inner in outer.children

    def test_sibling_loops(self):
        cfg = cfg_of(
            "int f() { int i; int s = 0;"
            "for (i = 0; i < 3; i++) s++;"
            "for (i = 0; i < 5; i++) s--;"
            "return s; }")
        nest = find_loops(cfg)
        assert len(nest.loops) == 2
        assert all(l.depth == 1 for l in nest.loops)

    def test_straight_line_blocks(self):
        cfg = cfg_of("int f() { int i; int s = 0; "
                     "for (i = 0; i < 3; i++) s++; return s; }")
        nest = find_loops(cfg)
        straight = nest.straight_line_blocks()
        assert cfg.entry in straight

    def test_fp_loop_detection(self):
        p = Program.from_source(
            "double f() { double s = 0.0; int i; "
            "for (i = 0; i < 9; i++) s += 0.5; return s; }\n"
            "int g() { int s = 0; int i; "
            "for (i = 0; i < 9; i++) s += 2; return s; }")
        fp = find_loops(lower_function(p.function("f")))
        iv = find_loops(lower_function(p.function("g")))
        assert fp.loops[0].is_fp_loop()
        assert not iv.loops[0].is_fp_loop()

    def test_block_loop_mapping(self):
        cfg = cfg_of("int f() { int i; int s = 0; "
                     "while (s < 5) { s++; } return s; }")
        nest = find_loops(cfg)
        loop = nest.loops[0]
        assert nest.loop_of(loop.header) is loop
        assert nest.depth_of(loop.header) == 1
        assert nest.depth_of(cfg.entry) == 0


SRC_CG = """
int leaf(int x) { return x + 1; }
int middle(int x) { return leaf(x) + leaf(x + 1); }
int rec_a(int x);
int rec_b(int x) { if (x <= 0) return 0; return rec_a(x - 1); }
int rec_a(int x) { return rec_b(x) + 1; }
int main() { return middle(2) + rec_a(3) + abs(-1); }
"""


class TestCallGraph:
    def setup_method(self):
        self.p = Program.from_source(SRC_CG)
        self.cfgs = lower_program(self.p)
        self.cg = build_call_graph(self.cfgs, self.p)

    def test_direct_edges(self):
        assert "leaf" in self.cg.callees("middle")
        assert set(self.cg.callers("leaf")) == {"middle"}

    def test_recursive_scc(self):
        assert self.cg.is_recursive("rec_a")
        assert self.cg.is_recursive("rec_b")
        assert not self.cg.is_recursive("leaf")

    def test_builtin_sites_flagged(self):
        builtins = {s.callee for s in self.cg.builtin_sites()}
        assert "abs" in builtins

    def test_topo_order_callers_first(self):
        order = self.cg.topo_order()
        flat = []
        for scc in order:
            flat.extend(scc)
        assert flat.index("main") < flat.index("middle") \
            < flat.index("leaf")

    def test_sites_in(self):
        assert len(self.cg.sites_in("middle")) == 2

    def test_indirect_call_detected(self):
        p = Program.from_source(
            "int cb(int x) { return x; } int (*fp)(int);"
            "int main() { fp = cb; return fp(3); }")
        cg = build_call_graph(lower_program(p), p)
        assert len(cg.indirect_sites()) == 1
