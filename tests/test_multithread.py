"""Multi-threaded layout advice tests (the §2.4 future-work heuristics)."""

from repro.core import CompilerOptions, compile_source
from repro.advisor import (
    advise_multithreaded, mt_report, rw_class, MTParams,
    false_sharing_candidates,
)

# two write-heavy counters used in disjoint phases (different "threads"),
# plus shared read-mostly configuration fields
SRC = """
struct shared {
    long cfg_a;
    long cfg_b;
    long counter_x;
    long counter_y;
};
struct shared *st;
int main() {
    int i; int it; long s = 0;
    st = (struct shared*) malloc(40 * sizeof(struct shared));
    for (i = 0; i < 40; i++) { st[i].cfg_a = i; st[i].cfg_b = -i; }
    for (it = 0; it < 9; it++)
        for (i = 0; i < 40; i++)
            st[i].counter_x = st[i].counter_x + (st[i].cfg_a & 1);
    for (it = 0; it < 9; it++)
        for (i = 0; i < 40; i++)
            st[i].counter_y = st[i].counter_y + (st[i].cfg_b & 1);
    for (i = 0; i < 40; i++) s += st[i].counter_x - st[i].counter_y;
    printf("%ld", s);
    return 0;
}
"""


def profile():
    res = compile_source(SRC, CompilerOptions(transform=False))
    return res.profiles["shared"]


class TestClassification:
    def test_rw_classes(self):
        prof = profile()
        params = MTParams()
        assert rw_class(prof, "cfg_a", params) == "read-mostly"
        assert rw_class(prof, "cfg_b", params) == "read-mostly"
        # counters are read-modify-write: balanced -> write-heavy at 0.5
        assert rw_class(prof, "counter_x", params) == "write-heavy"

    def test_unused_field(self):
        res = compile_source(
            "struct t { long a; long never; }; struct t g;"
            "int main() { g.a = 1; return (int) g.a; }",
            CompilerOptions(transform=False))
        assert rw_class(res.profiles["t"], "never", MTParams()) == \
            "unused"


class TestFalseSharing:
    def test_disjoint_writers_on_same_line_flagged(self):
        prof = profile()
        candidates = false_sharing_candidates(prof, MTParams())
        pairs = {frozenset((c.field_a, c.field_b)) for c in candidates}
        assert frozenset(("counter_x", "counter_y")) in pairs

    def test_affine_writers_not_flagged(self):
        src = SRC.replace(
            "st[i].counter_y = st[i].counter_y + (st[i].cfg_b & 1);",
            "st[i].counter_y = st[i].counter_y + 1;"
        ).replace(
            "st[i].counter_x = st[i].counter_x + (st[i].cfg_a & 1);",
            "st[i].counter_x = st[i].counter_x + 1;"
            " st[i].counter_y = st[i].counter_y + 1;")
        res = compile_source(src, CompilerOptions(transform=False))
        prof = res.profiles["shared"]
        candidates = false_sharing_candidates(prof, MTParams())
        pairs = {frozenset((c.field_a, c.field_b)) for c in candidates}
        assert frozenset(("counter_x", "counter_y")) not in pairs


class TestAdvice:
    def test_layout_separates_writers(self):
        advice = advise_multithreaded(profile())
        groups = advice.layout_groups
        # counters end up in different groups (different cache lines)
        homes = {}
        for k, g in enumerate(groups):
            for f in g:
                homes[f] = k
        assert homes["counter_x"] != homes["counter_y"]
        # readers grouped together
        assert homes["cfg_a"] == homes["cfg_b"]

    def test_layout_covers_all_fields(self):
        prof = profile()
        advice = advise_multithreaded(prof)
        flat = sorted(f for g in advice.layout_groups for f in g)
        assert flat == sorted(prof.record.field_names())

    def test_report_text(self):
        text = mt_report(profile())
        assert "Multi-threaded layout advice" in text
        assert "false-sharing" in text
        assert "counter_x" in text
