"""Dead-field, escape, and points-to analysis tests."""

from repro.frontend import Program
from repro.analysis import (
    analyze_field_usage, analyze_points_to, analyze_legality,
    relaxed_legal_types,
)


class TestFieldUsage:
    SRC = """
    struct t { long used_rw; long write_only; long never;
               long read_only; };
    struct t *g;
    int main() {
        g = (struct t*) malloc(8 * sizeof(struct t));
        g[0].used_rw = 1;
        g[0].used_rw += 2;
        g[1].write_only = 5;
        long x = g[0].used_rw + g[2].read_only;
        return (int) x;
    }
    """

    def test_counts(self):
        usage = analyze_field_usage(Program.from_source(self.SRC))
        u = usage.usage("t")
        assert u.of("used_rw").reads == 2   # compound counts as r+w
        assert u.of("used_rw").writes == 2
        assert u.of("write_only").writes == 1
        assert u.of("write_only").reads == 0
        assert u.of("read_only").reads == 1

    def test_classification(self):
        usage = analyze_field_usage(Program.from_source(self.SRC))
        u = usage.usage("t")
        assert u.dead_fields() == ["write_only"]
        assert u.unused_fields() == ["never"]
        assert set(u.removable_fields()) == {"write_only", "never"}
        assert set(u.live_fields()) == {"used_rw", "read_only"}

    def test_address_of_field_not_a_read(self):
        src = """
        struct t { long a; };
        struct t *g;
        void sink(long *p) { *p = 1; }
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            sink(&g[0].a);
            return 0;
        }
        """
        u = analyze_field_usage(Program.from_source(src)).usage("t")
        assert u.of("a").reads == 0

    def test_incr_counts_read_and_write(self):
        src = """
        struct t { long a; };
        struct t g;
        int main() { g.a++; return 0; }
        """
        u = analyze_field_usage(Program.from_source(src)).usage("t")
        assert u.of("a").reads == 1 and u.of("a").writes == 1


class TestPointsTo:
    def test_malloc_creates_heap_site(self):
        src = """
        struct t { long a; };
        struct t *g;
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            g[0].a = 1;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        locs = pts.points_to_var("g")
        assert len(locs) == 1
        assert next(iter(locs)).kind == "heap"

    def test_copy_propagation(self):
        src = """
        struct t { long a; };
        struct t *g;
        struct t *h;
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            h = g;
            h[0].a = 1;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert pts.points_to_var("g") == pts.points_to_var("h")
        assert pts.may_alias("g", "h")

    def test_distinct_sites_do_not_alias(self):
        src = """
        struct t { long a; };
        struct t *g;
        struct t *h;
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            h = (struct t*) malloc(4 * sizeof(struct t));
            g[0].a = 1; h[0].a = 2;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert not pts.may_alias("g", "h")

    def test_field_store_load(self):
        src = """
        struct n { struct n *next; long v; };
        struct n *a;
        struct n *b;
        struct n *c;
        int main() {
            a = (struct n*) malloc(2 * sizeof(struct n));
            b = (struct n*) malloc(2 * sizeof(struct n));
            a->next = b;
            c = a->next;
            c->v = 1;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert pts.points_to_var("c") == pts.points_to_var("b")

    def test_record_cast_collapses(self):
        src = """
        struct t1 { long a; };
        struct t2 { long b; };
        struct t1 *g;
        int main() {
            g = (struct t1*) malloc(4 * sizeof(struct t1));
            struct t2 *q = (struct t2*) g;
            q->b = 1;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert not pts.is_field_safe("t1")
        assert not pts.is_field_safe("t2")

    def test_field_address_arith_collapses(self):
        src = """
        struct t { long a; long b; };
        struct t *g;
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            long *p = &g[0].a;
            p = p + 1;             // now points at b: collapse
            *p = 9;
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert not pts.is_field_safe("t")

    def test_contained_field_address_is_safe(self):
        src = """
        struct t { long a; long b; };
        struct t *g;
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            long *p = &g[0].a;
            *p = 9;                // only ever field a
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert pts.is_field_safe("t")

    def test_param_binding(self):
        src = """
        struct t { long a; };
        struct t *g;
        void init(struct t *p) { p->a = 0; }
        int main() {
            g = (struct t*) malloc(4 * sizeof(struct t));
            init(g);
            return 0;
        }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert pts.points_to_var("p") == pts.points_to_var("g")

    def test_return_value_flow(self):
        src = """
        struct t { long a; };
        struct t *make(void) {
            return (struct t*) malloc(4 * sizeof(struct t));
        }
        struct t *g;
        int main() { g = make(); g->a = 1; return 0; }
        """
        pts = analyze_points_to(Program.from_source(src))
        assert len(pts.points_to_var("g")) == 1

    def test_relaxed_legal_types_filters_collapsed(self):
        src = """
        struct safe { long a; long b; };
        struct bad { long a; long b; };
        struct safe *gs;
        struct bad *gb;
        int main() {
            gs = (struct safe*) malloc(4 * sizeof(struct safe));
            gb = (struct bad*) malloc(4 * sizeof(struct bad));
            long *p = &gs[0].a;    // ATKN but field-contained
            *p = 1;
            long *q = &gb[0].a;    // ATKN and walks into b
            q = q + 1;
            *q = 2;
            return 0;
        }
        """
        prog = Program.from_source(src)
        leg = analyze_legality(prog)
        pts = analyze_points_to(prog)
        names = relaxed_legal_types(leg, pts)
        assert "safe" in names
        assert "bad" not in names
