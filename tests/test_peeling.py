"""Structure peeling tests: legality checking, rewriting, semantics."""

import pytest

from repro.frontend import Program
from repro.runtime import run_program
from repro.transform import (
    PeelSpec, peel_structure, check_peelable, TransformError,
)

SRC = """
struct rec { double a; double b; long c; };
struct rec *P;
int main() {
    int i; double s = 0.0;
    P = (struct rec*) malloc(40 * sizeof(struct rec));
    for (i = 0; i < 40; i++) {
        P[i].a = i * 0.5;
        P[i].b = i * 0.25;
        P[i].c = i;
    }
    for (i = 0; i < 40; i++) s += P[i].a * P[i].b + (double) P[i].c;
    free(P);
    printf("%.2f", s);
    return 0;
}
"""


def peel(src=SRC, groups=(("a",), ("b",), ("c",)), dead=(), rec="rec",
         ptr="P"):
    p = Program.from_source(src)
    spec = PeelSpec(record=p.record(rec), pointer=ptr,
                    groups=[list(g) for g in groups],
                    dead_fields=list(dead))
    return p, peel_structure(p, spec)


class TestSemantics:
    def test_per_field_peel_preserves_output(self):
        p, p2 = peel()
        assert run_program(p).stdout == run_program(p2).stdout

    def test_grouped_peel_preserves_output(self):
        p, p2 = peel(groups=(("a", "b"), ("c",)))
        assert run_program(p).stdout == run_program(p2).stdout

    def test_pointer_plus_index_form(self):
        src = """
        struct rec { long x; long y; };
        struct rec *P;
        int main() {
            int i; long s = 0;
            P = (struct rec*) malloc(10 * sizeof(struct rec));
            for (i = 0; i < 10; i++) { (P + i)->x = i; (P + i)->y = 1; }
            for (i = 0; i < 10; i++) s += (P + i)->x * (P + i)->y;
            printf("%ld", s);
            return 0;
        }
        """
        p, p2 = peel(src, groups=(("x",), ("y",)))
        assert run_program(p).stdout == run_program(p2).stdout

    def test_dead_fields_dropped(self):
        src = SRC.replace("P[i].c = i;", "P[i].c = i;  // dead now") \
            .replace("+ (double) P[i].c", "")
        p, p2 = peel(src, groups=(("a",), ("b",)), dead=("c",))
        assert run_program(p).stdout == run_program(p2).stdout
        assert "rec__p0" in p2.records
        assert all(not r.has_field("c") for r in p2.record_types()
                   if r.name.startswith("rec__"))

    def test_multiple_allocations(self):
        src = """
        struct rec { long x; long y; };
        struct rec *P;
        int main() {
            int i; long s = 0;
            P = (struct rec*) malloc(8 * sizeof(struct rec));
            for (i = 0; i < 8; i++) P[i].x = i;
            free(P);
            P = (struct rec*) malloc(16 * sizeof(struct rec));
            for (i = 0; i < 16; i++) { P[i].x = i; P[i].y = 2 * i; }
            for (i = 0; i < 16; i++) s += P[i].x + P[i].y;
            printf("%ld", s);
            return 0;
        }
        """
        p, p2 = peel(src, groups=(("x",), ("y",)))
        assert run_program(p).stdout == run_program(p2).stdout


class TestRewriting:
    def test_pieces_created_and_original_gone(self):
        _, p2 = peel()
        assert "rec__p0" in p2.records
        assert "rec__p1" in p2.records
        assert "rec__p2" in p2.records
        assert not p2.records.get("rec") or \
            not p2.records["rec"].fields

    def test_pointers_created(self):
        _, p2 = peel()
        names = {g.name for g in p2.globals()}
        assert {"P__p0", "P__p1", "P__p2"} <= names
        assert "P" not in names

    def test_piece_sizes(self):
        _, p2 = peel(groups=(("a", "b"), ("c",)))
        assert p2.record("rec__p0").size == 16
        assert p2.record("rec__p1").size == 8


class TestCheckPeelable:
    def check(self, src, rec="rec", ptr="P"):
        p = Program.from_source(src)
        return check_peelable(p, p.record(rec), ptr)

    def test_clean_program_peelable(self):
        assert self.check(SRC) == []

    def test_recursive_type_rejected(self):
        src = """
        struct rec { struct rec *next; long v; };
        struct rec *P;
        int main() {
            P = (struct rec*) malloc(4 * sizeof(struct rec));
            P[0].v = 1;
            return 0;
        }
        """
        problems = self.check(src)
        assert any("recursive" in p for p in problems)

    def test_second_global_pointer_rejected(self):
        src = SRC.replace("struct rec *P;",
                          "struct rec *P; struct rec *Q;")
        assert any("Q" in p for p in self.check(src))

    def test_local_pointer_rejected(self):
        src = SRC.replace("int i; double s = 0.0;",
                          "int i; double s = 0.0; struct rec *cur = P;"
                          " if (cur != NULL) s += 1.0;")
        assert self.check(src)

    def test_function_signature_use_rejected(self):
        src = """
        struct rec { long v; };
        struct rec *P;
        void touch(struct rec *p) { p->v = 1; }
        int main() {
            P = (struct rec*) malloc(4 * sizeof(struct rec));
            touch(P);
            return 0;
        }
        """
        problems = self.check(src)
        assert any("signature" in p for p in problems)

    def test_pointer_passed_to_other_call_rejected(self):
        src = SRC.replace("free(P);",
                          "fwrite(P, sizeof(struct rec), 40, NULL);")
        assert self.check(src)

    def test_global_struct_variable_rejected(self):
        src = SRC.replace("struct rec *P;",
                          "struct rec *P; struct rec fixed;")
        assert self.check(src)

    def test_peel_structure_verifies(self):
        src = SRC.replace("struct rec *P;",
                          "struct rec *P; struct rec *Q;")
        p = Program.from_source(src)
        spec = PeelSpec(record=p.record("rec"), pointer="P",
                        groups=[["a"], ["b"], ["c"]])
        with pytest.raises(TransformError):
            peel_structure(p, spec)


class TestSpecValidation:
    def test_groups_must_partition(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            PeelSpec(record=p.record("rec"), pointer="P",
                     groups=[["a"], ["b"]])   # c missing

    def test_duplicate_field_rejected(self):
        p = Program.from_source(SRC)
        with pytest.raises(TransformError):
            PeelSpec(record=p.record("rec"), pointer="P",
                     groups=[["a", "b"], ["b", "c"]])


class TestPerformanceDirection:
    def test_single_field_sweeps_speed_up(self):
        src = """
        struct rec { double a; double b; double c; double d; };
        struct rec *P;
        int main() {
            int i; int it; double s = 0.0;
            P = (struct rec*) malloc(1500 * sizeof(struct rec));
            for (i = 0; i < 1500; i++) P[i].a = i * 0.001;
            for (it = 0; it < 12; it++)
                for (i = 0; i < 1500; i++)
                    s += P[i].a;
            printf("%.3f", s);
            return 0;
        }
        """
        p, p2 = peel(src, groups=(("a",), ("b",), ("c",), ("d",)))
        r1, r2 = run_program(p), run_program(p2)
        assert r1.stdout == r2.stdout
        assert r2.cycles < r1.cycles
