"""Semantic analysis tests."""

import pytest

from repro.frontend import Program, SemaError
from repro.frontend import ast


def program(src):
    return Program.from_source(src)


def main_fn(src):
    return program(src).function("main")


class TestResolution:
    def test_global_resolution(self):
        p = program("int g; int main() { g = 1; return g; }")
        fn = p.function("main")
        ident = fn.body.stmts[0].expr.target
        assert ident.symbol.kind == "global"

    def test_local_shadows_global(self):
        p = program("int x; int main() { int x = 5; return x; }")
        ret = p.function("main").body.stmts[1]
        assert ret.value.symbol.kind == "local"

    def test_param_resolution(self):
        p = program("int f(int a) { return a; } int main() { return 0; }")
        ret = p.function("f").body.stmts[0]
        assert ret.value.symbol.kind == "param"

    def test_inner_scope(self):
        fn = main_fn("int main() { { int y = 1; } int y = 2; return y; }")
        assert fn is not None   # no redefinition error

    def test_undeclared_identifier_raises(self):
        with pytest.raises(SemaError):
            program("int main() { return nope; }")

    def test_forward_function_call(self):
        p = program("int main() { return later(); } "
                    "int later() { return 7; }")
        assert p.function("main") is not None

    def test_libc_functions_visible(self):
        program("int main() { void *p = malloc(8); free(p); return 0; }")


class TestTypes:
    def expr_type(self, decls, expr):
        src = decls + f"\nint main() {{ long __t = 0; __t = (long)({expr});" \
            " return 0; }"
        p = program(src)
        assign = p.function("main").body.stmts[1].expr
        return assign.value.operand.type

    def test_int_literal_type(self):
        assert str(self.expr_type("", "42")) == "int"

    def test_big_literal_is_long(self):
        assert str(self.expr_type("", "5000000000")) == "long"

    def test_float_arith(self):
        t = self.expr_type("", "1 + 2.5")
        assert t.is_float()

    def test_comparison_is_int(self):
        assert str(self.expr_type("", "1 < 2")) == "int"

    def test_pointer_arith_keeps_pointer(self):
        t = self.expr_type("int g[4];", "g + 1")
        assert t.is_pointer()

    def test_pointer_difference_is_long(self):
        t = self.expr_type("int g[4];", "(g + 2) - g")
        assert str(t.strip()) == "long"

    def test_member_type(self):
        p = program("struct s { double d; } ; struct s *g;"
                    "int main() { double x = g->d; return 0; }")
        decl = p.function("main").body.stmts[0]
        assert decl.init.type.is_float()

    def test_member_record_annotation(self):
        p = program("struct s { int v; }; struct s *g;"
                    "int main() { return g->v; }")
        ret = p.function("main").body.stmts[0]
        assert ret.value.record.name == "s"

    def test_index_of_pointer(self):
        t = self.expr_type("long *g;", "g[3]")
        assert str(t.strip()) == "long"

    def test_sizeof_type(self):
        t = self.expr_type("struct s { long a; long b; };",
                           "sizeof(struct s)")
        assert t.is_integer()

    def test_address_of(self):
        t = self.expr_type("int g;", "&g")
        assert t.is_pointer()


class TestErrors:
    def test_member_on_non_struct(self):
        with pytest.raises(SemaError):
            program("int main() { int x; return x.y; }")

    def test_arrow_on_non_pointer(self):
        with pytest.raises(SemaError):
            program("struct s { int v; }; struct s g;"
                    "int main() { return g->v; }")

    def test_unknown_field(self):
        with pytest.raises(Exception):
            program("struct s { int v; }; struct s *g;"
                    "int main() { return g->w; }")

    def test_call_arity_mismatch(self):
        with pytest.raises(SemaError):
            program("int f(int a) { return a; } "
                    "int main() { return f(1, 2); }")

    def test_call_non_function(self):
        with pytest.raises(SemaError):
            program("int main() { int x = 0; return x(); }")

    def test_deref_non_pointer(self):
        with pytest.raises(SemaError):
            program("int main() { int x = 0; return *x; }")

    def test_assign_to_literal(self):
        with pytest.raises(SemaError):
            program("int main() { 3 = 4; return 0; }")

    def test_assign_to_function_name(self):
        with pytest.raises(SemaError):
            program("int f() { return 0; } "
                    "int main() { f = 0; return 0; }")

    def test_varargs_printf_ok(self):
        program('int main() { printf("%d %d", 1, 2); return 0; }')


class TestProgramContainer:
    def test_multi_unit_shares_structs(self):
        p = Program.from_sources([
            ("a.c", "struct s { int x; }; struct s *g;"),
            ("b.c", "struct s; int use(struct s *p); "
                    "int main() { return 0; }"),
        ])
        assert p.record("s").field("x").type is not None

    def test_cross_unit_function_call(self):
        p = Program.from_sources([
            ("a.c", "int helper(void) { return 3; }"),
            ("b.c", "int helper(void); int main() { return helper(); }"),
        ])
        assert p.has_function("helper")
        assert p.has_function("main")

    def test_function_lookup_raises(self):
        p = program("int main() { return 0; }")
        with pytest.raises(KeyError):
            p.function("ghost")

    def test_symbols_interned_once(self):
        p = Program.from_sources([
            ("a.c", "int shared;"),
            ("b.c", "int main() { return 0; }"),
        ])
        assert p.global_symbol("shared") is not None
