"""Interpreter semantics tests: the simulated machine must execute MiniC
with C semantics, since transformation correctness is judged by output
equality."""

import pytest

from repro.frontend import Program
from repro.runtime import run_program, StepLimitExceeded
from .conftest import wrap_main


def out(src, **kw):
    r = run_program(Program.from_source(src), **kw)
    return r.stdout


class TestArithmetic:
    def test_integer_ops(self, stdout_of):
        src = wrap_main('printf("%d %d %d %d", 7+3, 7-3, 7*3, 7&3);')
        assert stdout_of(src) == "10 4 21 3"

    def test_c_division_truncates_toward_zero(self, stdout_of):
        src = wrap_main('printf("%d %d %d %d", 7/2, -7/2, 7%2, -7%2);')
        assert stdout_of(src) == "3 -3 1 -1"

    def test_shifts_and_bitops(self, stdout_of):
        src = wrap_main('printf("%d %d %d %d", 1<<4, 32>>2, 5^3, 5|2);')
        assert stdout_of(src) == "16 8 6 7"

    def test_float_arith(self, stdout_of):
        src = wrap_main('printf("%.2f %.2f", 1.5 * 2.0, 7.0 / 2.0);')
        assert stdout_of(src) == "3.00 3.50"

    def test_mixed_int_float(self, stdout_of):
        src = wrap_main('printf("%.1f", 1 + 0.5);')
        assert stdout_of(src) == "1.5"

    def test_comparisons(self, stdout_of):
        src = wrap_main('printf("%d%d%d%d%d%d", 1<2, 2<=2, 3>4, '
                        '4>=4, 1==1, 1!=1);')
        assert stdout_of(src) == "110110"

    def test_logical_short_circuit(self, stdout_of):
        src = """
        int calls;
        int bump() { calls++; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            printf("%d %d %d", a, b, calls);
            return 0;
        }
        """
        assert stdout_of(src) == "0 1 0"

    def test_conditional_expr(self, stdout_of):
        src = wrap_main('printf("%d %d", 1 ? 10 : 20, 0 ? 10 : 20);')
        assert stdout_of(src) == "10 20"

    def test_unary_ops(self, stdout_of):
        src = wrap_main('printf("%d %d %d", -5, !0, ~0);')
        assert stdout_of(src) == "-5 1 -1"

    def test_comma_operator(self, stdout_of):
        src = wrap_main('int x = (1, 2, 3); printf("%d", x);')
        assert stdout_of(src) == "3"

    def test_cast_float_to_int_truncates(self, stdout_of):
        src = wrap_main('printf("%d %d", (int) 2.9, (int) -2.9);')
        assert stdout_of(src) == "2 -2"

    def test_int_wrapping_on_store(self, stdout_of):
        src = """
        struct s { char c; unsigned char u; };
        struct s g;
        int main() {
            g.c = 300;
            g.u = 300;
            printf("%d %d", (int) g.c, (int) g.u);
            return 0;
        }
        """
        assert stdout_of(src) == "44 44"


class TestControlFlow:
    def test_while_loop(self, stdout_of):
        src = wrap_main(
            'int i = 0; int s = 0; while (i < 5) { s += i; i++; }'
            'printf("%d", s);')
        assert stdout_of(src) == "10"

    def test_for_loop(self, stdout_of):
        src = wrap_main(
            'int i; long f = 1; for (i = 1; i <= 6; i++) f *= i;'
            'printf("%ld", f);')
        assert stdout_of(src) == "720"

    def test_do_while_runs_once(self, stdout_of):
        src = wrap_main('int n = 0; do { n++; } while (0); '
                        'printf("%d", n);')
        assert stdout_of(src) == "1"

    def test_break_continue(self, stdout_of):
        src = wrap_main(
            'int i; int s = 0;'
            'for (i = 0; i < 100; i++) {'
            '  if (i % 2) continue;'
            '  if (i > 8) break;'
            '  s += i; }'
            'printf("%d", s);')
        assert stdout_of(src) == "20"

    def test_nested_loops(self, stdout_of):
        src = wrap_main(
            'int i; int j; int s = 0;'
            'for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) s += i * j;'
            'printf("%d", s);')
        assert stdout_of(src) == "9"

    def test_cycle_limit_raises(self):
        src = "int main() { while (1) { } return 0; }"
        with pytest.raises(StepLimitExceeded):
            run_program(Program.from_source(src), cycle_limit=10_000)


class TestFunctions:
    def test_call_and_return(self, stdout_of):
        src = """
        int add(int a, int b) { return a + b; }
        int main() { printf("%d", add(2, 40)); return 0; }
        """
        assert stdout_of(src) == "42"

    def test_recursion(self, stdout_of):
        src = """
        long fib(long n) { if (n < 2) return n;
                           return fib(n-1) + fib(n-2); }
        int main() { printf("%ld", fib(12)); return 0; }
        """
        assert stdout_of(src) == "144"

    def test_mutual_recursion(self, stdout_of):
        src = """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main() { printf("%d%d", even(10), odd(10)); return 0; }
        """
        assert stdout_of(src) == "10"

    def test_void_function(self, stdout_of):
        src = """
        int g;
        void setg(int v) { g = v; }
        int main() { setg(9); printf("%d", g); return 0; }
        """
        assert stdout_of(src) == "9"

    def test_function_pointer_call(self, stdout_of):
        src = """
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int (*op)(int);
        int main() {
            op = twice;
            int a = op(10);
            op = thrice;
            printf("%d %d", a, op(10));
            return 0;
        }
        """
        assert stdout_of(src) == "20 30"

    def test_exit_builtin(self):
        r = run_program(Program.from_source(
            'int main() { exit(3); return 0; }'))
        assert r.exit_code == 3

    def test_external_function_stub(self, stdout_of):
        src = """
        long mystery(long x);
        int main() { printf("%ld", mystery(5)); return 0; }
        """
        assert stdout_of(src) == "0"

    def test_exit_code_from_main(self):
        r = run_program(Program.from_source("int main() { return 7; }"))
        assert r.exit_code == 7


class TestPointersAndStructs:
    def test_address_of_local(self, stdout_of):
        src = wrap_main('int x = 1; int *p = &x; *p = 42; '
                        'printf("%d", x);')
        assert stdout_of(src) == "42"

    def test_pointer_arithmetic_scaling(self, stdout_of):
        src = wrap_main(
            'long a[4]; a[0] = 1; a[1] = 2; a[2] = 3;'
            'long *p = a; p = p + 2; printf("%ld", *p);')
        assert stdout_of(src) == "3"

    def test_pointer_difference(self, stdout_of):
        src = wrap_main('double a[8]; printf("%ld", (&a[6]) - (&a[2]));')
        assert stdout_of(src) == "4"

    def test_struct_field_access(self, stdout_of):
        src = """
        struct p { int x; int y; };
        int main() {
            struct p v;
            v.x = 3; v.y = 4;
            printf("%d", v.x * v.x + v.y * v.y);
            return 0;
        }
        """
        assert stdout_of(src) == "25"

    def test_struct_pointer_arrow(self, stdout_of):
        src = """
        struct p { int x; };
        int main() {
            struct p v;
            struct p *q = &v;
            q->x = 8;
            printf("%d", v.x);
            return 0;
        }
        """
        assert stdout_of(src) == "8"

    def test_array_of_structs(self, stdout_of):
        src = """
        struct e { long k; double w; };
        struct e *tab;
        int main() {
            int i;
            tab = (struct e*) malloc(10 * sizeof(struct e));
            for (i = 0; i < 10; i++) { tab[i].k = i; tab[i].w = i*0.5; }
            printf("%ld %.1f", tab[7].k, tab[7].w);
            return 0;
        }
        """
        assert stdout_of(src) == "7 3.5"

    def test_linked_list(self, stdout_of):
        src = """
        struct n { long v; struct n *next; };
        int main() {
            int i;
            struct n *head = NULL;
            for (i = 0; i < 5; i++) {
                struct n *node = (struct n*) malloc(sizeof(struct n));
                node->v = i;
                node->next = head;
                head = node;
            }
            long s = 0;
            while (head != NULL) { s = s * 10 + head->v; head = head->next; }
            printf("%ld", s);
            return 0;
        }
        """
        assert stdout_of(src) == "43210"

    def test_nested_struct_access(self, stdout_of):
        src = """
        struct inner { int a; int b; };
        struct outer { struct inner in; long k; };
        int main() {
            struct outer o;
            o.in.a = 1; o.in.b = 2; o.k = 3;
            printf("%d%d%ld", o.in.a, o.in.b, o.k);
            return 0;
        }
        """
        assert stdout_of(src) == "123"

    def test_bitfield_read_write(self, stdout_of):
        src = """
        struct flags { int a : 3; int b : 4; unsigned c : 2; };
        struct flags g;
        int main() {
            g.a = 3; g.b = 9; g.c = 5;
            printf("%d %d %d", g.a, g.b, (int) g.c);
            return 0;
        }
        """
        # a:3 fits; b=9 fits in 4 signed -> -7; c=5 wraps to 1 in 2 bits
        assert stdout_of(src) == "3 -7 1"

    def test_incr_decr_on_fields(self, stdout_of):
        src = """
        struct c { long n; };
        struct c g;
        int main() {
            g.n = 5;
            g.n++;
            ++g.n;
            g.n--;
            printf("%ld", g.n);
            return 0;
        }
        """
        assert stdout_of(src) == "6"

    def test_compound_assign_on_field(self, stdout_of):
        src = """
        struct c { long n; double d; };
        struct c g;
        int main() {
            g.n = 10; g.n *= 3; g.n -= 5; g.n %= 7;
            g.d = 8.0; g.d /= 2.0;
            printf("%ld %.1f", g.n, g.d);
            return 0;
        }
        """
        assert stdout_of(src) == "4 4.0"

    def test_postfix_vs_prefix_value(self, stdout_of):
        src = wrap_main('int i = 5; int a = i++; int b = ++i;'
                        'printf("%d %d %d", a, b, i);')
        assert stdout_of(src) == "5 7 7"

    def test_pointer_increment_steps_element(self, stdout_of):
        src = """
        struct s { long a; long b; };
        int main() {
            struct s arr[3];
            arr[1].a = 77;
            struct s *p = arr;
            p++;
            printf("%ld", p->a);
            return 0;
        }
        """
        assert stdout_of(src) == "77"


class TestBuiltins:
    def test_memset_zeroes_struct_array(self, stdout_of):
        src = """
        struct s { long v; };
        int main() {
            struct s *a = (struct s*) malloc(4 * sizeof(struct s));
            a[2].v = 5;
            memset(a, 0, 4 * sizeof(struct s));
            printf("%ld", a[2].v);
            return 0;
        }
        """
        assert stdout_of(src) == "0"

    def test_memcpy(self, stdout_of):
        src = """
        int main() {
            long *a = (long*) malloc(32);
            long *b = (long*) malloc(32);
            a[1] = 13;
            memcpy(b, a, 32);
            printf("%ld", b[1]);
            return 0;
        }
        """
        assert stdout_of(src) == "13"

    def test_math_builtins(self, stdout_of):
        src = wrap_main(
            'printf("%.1f %.1f %.1f %d", sqrt(9.0), fabs(-2.5), '
            'floor(3.7), abs(-4));')
        assert stdout_of(src) == "3.0 2.5 3.0 4"

    def test_rand_deterministic(self):
        src = wrap_main('printf("%d %d", rand() % 100, rand() % 100);')
        assert out(src) == out(src)

    def test_srand_resets(self, stdout_of):
        src = wrap_main(
            'srand(7); int a = rand();'
            'srand(7); int b = rand();'
            'printf("%d", a == b);')
        assert stdout_of(src) == "1"

    def test_strlen_strcmp(self, stdout_of):
        src = wrap_main(
            'printf("%ld %d %d", strlen("hello"), '
            'strcmp("a", "a"), strcmp("a", "b") < 0);')
        assert stdout_of(src) == "5 0 1"

    def test_printf_formats(self, stdout_of):
        src = wrap_main(
            'printf("%d|%5d|%ld|%x|%c|%s|%.3f|%%", '
            '1, 2, 3, 255, 65, "ok", 0.5);')
        assert stdout_of(src) == "1|    2|3|ff|A|ok|0.500|%"

    def test_free_then_use_after_realloc_pattern(self, stdout_of):
        src = """
        int main() {
            long *a = (long*) malloc(16);
            a[0] = 9;
            a = (long*) realloc(a, 64);
            printf("%ld", a[0]);
            free(a);
            return 0;
        }
        """
        assert stdout_of(src) == "9"


class TestGlobals:
    def test_global_initializer(self, stdout_of):
        src = "long g = 40 + 2;\n" + wrap_main('printf("%ld", g);')
        assert stdout_of(src) == "42"

    def test_global_float_initializer(self, stdout_of):
        src = "double g = 1.5;\n" + wrap_main('printf("%.1f", g);')
        assert stdout_of(src) == "1.5"

    def test_globals_zero_initialized(self, stdout_of):
        src = "long g; double d; \n" + \
            wrap_main('printf("%ld %.1f", g, d);')
        assert stdout_of(src) == "0 0.0"

    def test_global_array(self, stdout_of):
        src = "long tab[8];\n" + wrap_main(
            'int i; for (i = 0; i < 8; i++) tab[i] = i * i;'
            'printf("%ld", tab[5]);')
        assert stdout_of(src) == "25"


class TestCycleAccounting:
    def test_cycles_positive_and_monotone_with_work(self):
        short = run_program(Program.from_source(wrap_main(
            "int i; int s = 0; for (i = 0; i < 10; i++) s += i;")))
        long_ = run_program(Program.from_source(wrap_main(
            "int i; int s = 0; for (i = 0; i < 1000; i++) s += i;")))
        assert 0 < short.cycles < long_.cycles

    def test_memory_latency_included(self):
        # touching scattered memory must cost more than registers
        reg = run_program(Program.from_source(wrap_main(
            "int i; long s = 0; for (i = 0; i < 500; i++) s += i;")))
        mem = run_program(Program.from_source(
            "long tab[4096];\n" + wrap_main(
                "int i; long s = 0;"
                "for (i = 0; i < 500; i++) s += tab[(i * 67) % 4096];")))
        assert mem.cycles > reg.cycles
