"""Machine-state tests: PMU sampling, edge profiling, cycle accounting."""

import pytest

from repro.frontend import Program
from repro.runtime import Machine, CompiledProgram, PMU, SiteInfo
from repro.runtime.machine import EdgeProfiler


class TestPMU:
    def test_sampling_rate_approximate(self):
        pmu = PMU(period=10)
        for _ in range(1000):
            pmu.on_access(1, 5, 0, 0)
        assert 70 <= pmu.samples_taken <= 130

    def test_period_one_samples_everything(self):
        pmu = PMU(period=1)
        for _ in range(50):
            pmu.on_access(2, 5, 0, 0)
        assert pmu.samples_taken == 50

    def test_miss_attribution(self):
        pmu = PMU(period=1)
        pmu.on_access(3, 200, -1, 0)     # serviced by memory: a miss
        pmu.on_access(3, 1, 0, 0)        # first-level hit
        s = pmu.site_samples[3]
        assert s.accesses == 2
        assert s.misses == 1
        assert s.total_latency == 201

    def test_fp_first_level_is_l2(self):
        pmu = PMU(period=1)
        # serviced at level 1 which IS the first level for FP: not a miss
        pmu.on_access(4, 6, 1, 1)
        assert pmu.site_samples[4].misses == 0

    def test_jitter_avoids_aliasing(self):
        """Alternating two sites with an even period must sample both."""
        pmu = PMU(period=4)
        for i in range(4000):
            pmu.on_access(i % 2, 5, 0, 0)
        assert set(pmu.site_samples) == {0, 1}

    def test_by_field_rollup(self):
        pmu = PMU(period=1)
        pmu.on_access(1, 10, -1, 0)
        pmu.on_access(2, 20, 0, 0)
        sites = [SiteInfo(0), SiteInfo(1, record="t", field="a"),
                 SiteInfo(2, record="t", field="a")]
        agg = pmu.by_field(sites)
        assert agg[("t", "a")].accesses == 2
        assert agg[("t", "a")].total_latency == 30

    def test_anonymous_sites_not_rolled_up(self):
        pmu = PMU(period=1)
        pmu.on_access(0, 10, -1, 0)
        assert pmu.by_field([SiteInfo(0)]) == {}

    def test_avg_latency(self):
        from repro.runtime import FieldSample
        s = FieldSample(accesses=4, misses=1, total_latency=40)
        assert s.avg_latency == 10.0
        assert FieldSample().avg_latency == 0.0

    def test_deterministic(self):
        def sample():
            pmu = PMU(period=7)
            for i in range(500):
                pmu.on_access(i % 3, 5, 0, 0)
            return {k: v.accesses for k, v in pmu.site_samples.items()}
        assert sample() == sample()


class TestEdgeProfiler:
    def test_counts_and_counter_allocation(self):
        m = Machine(instrument=True)
        prof = m.profiler
        addr = prof.counter_for("f", 0, 1)
        prof.bump("f", 0, 1, addr)
        prof.bump("f", 0, 1, addr)
        assert prof.counts[("f", 0, 1)] == 2

    def test_counter_addresses_unique(self):
        m = Machine(instrument=True)
        a1 = m.profiler.counter_for("f", 0, 1)
        a2 = m.profiler.counter_for("f", 1, 2)
        assert a1 != a2
        assert m.profiler.counter_for("f", 0, 1) == a1

    def test_bump_costs_cycles(self):
        m = Machine(instrument=True)
        addr = m.profiler.counter_for("f", 0, 1)
        before = m.cycles
        m.profiler.bump("f", 0, 1, addr)
        assert m.cycles > before

    def test_edge_counts_match_execution(self):
        src = """
        int main() {
            int i; long s = 0;
            for (i = 0; i < 23; i++) s += i;
            printf("%ld", s);
            return 0;
        }
        """
        m = Machine(instrument=True)
        CompiledProgram(Program.from_source(src), m).run()
        counts = m.profiler.counts
        # the loop back edge executed exactly 23 times
        assert 23.0 in [v for v in counts.values()]


class TestMachineMisc:
    def test_rand_is_lcg_deterministic(self):
        m1, m2 = Machine(), Machine()
        assert [m1.rand() for _ in range(5)] == \
            [m2.rand() for _ in range(5)]

    def test_srand(self):
        m = Machine()
        m.srand(99)
        a = m.rand()
        m.srand(99)
        assert m.rand() == a

    def test_function_registration(self):
        m = Machine()
        fid1 = m.register_function("fake1")
        fid2 = m.register_function("fake2")
        assert fid1 != fid2
        assert m.func_table[fid1] == "fake1"

    def test_mem_rw_roundtrip_with_accounting(self):
        m = Machine()
        before = m.cycles
        m.mem_write(0x4000_0000, 7, False, 0)
        assert m.mem_read(0x4000_0000, False, 0) == 7
        assert m.cycles > before
        assert m.cache.accesses == 2

    def test_stdout_concatenation(self):
        m = Machine()
        m.output.extend(["a", "b"])
        assert m.stdout == "ab"

    def test_cycle_limit_check(self):
        from repro.runtime import StepLimitExceeded
        m = Machine(cycle_limit=10)
        m.cycles = 11
        with pytest.raises(StepLimitExceeded):
            m.check_budget()
