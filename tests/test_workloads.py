"""Workload tests: Table 1 rows are exact, checksums survive the
transformations, and the three headline benchmarks move in the paper's
direction.  Uses the small 'train' inputs to stay fast."""

import pytest

from repro.core import compile_program
from repro.runtime import run_program
from repro.workloads import (
    ALL_WORKLOADS, WORKLOADS_BY_NAME, get_workload, MCF, ART, MOLDYN,
    PopulationSpec, generate_population, population_for_row,
)
from repro.frontend import Program
from repro.analysis import analyze_legality, analyze_escapes


@pytest.fixture(scope="module")
def compiled():
    """Compile every workload once (train inputs)."""
    out = {}
    for wl in ALL_WORKLOADS:
        out[wl.name] = compile_program(wl.program("train"))
    return out


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(ALL_WORKLOADS) == 12

    def test_lookup(self):
        assert get_workload("181.mcf") is MCF
        assert WORKLOADS_BY_NAME["179.art"] is ART

    def test_unique_names(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(set(names)) == len(names)

    def test_train_and_ref_differ(self):
        for wl in ALL_WORKLOADS:
            assert wl.sources("train") != wl.sources("ref")

    def test_unknown_input_set_rejected(self):
        with pytest.raises(ValueError):
            MCF.sources("huge")


class TestTable1Rows:
    def test_all_rows_match_paper(self, compiled):
        for wl in ALL_WORKLOADS:
            res = compiled[wl.name]
            got = res.table1_row()
            want = (wl.paper.types, wl.paper.legal, wl.paper.relaxed)
            assert got == want, f"{wl.name}: {got} != {want}"

    def test_average_percentages_near_paper(self, compiled):
        legal_pct = []
        relax_pct = []
        for wl in ALL_WORKLOADS:
            t, l, r = compiled[wl.name].table1_row()
            legal_pct.append(100.0 * l / t)
            relax_pct.append(100.0 * r / t)
        avg_legal = sum(legal_pct) / len(legal_pct)
        avg_relax = sum(relax_pct) / len(relax_pct)
        # paper: 20.9% and 65.7%
        assert abs(avg_legal - 20.9) < 3.0
        assert abs(avg_relax - 65.7) < 3.0


class TestSemanticPreservation:
    @pytest.mark.parametrize("name",
                             [w.name for w in ALL_WORKLOADS])
    def test_checksum_preserved(self, compiled, name):
        res = compiled[name]
        before = run_program(res.program)
        after = run_program(res.transformed)
        assert before.stdout == after.stdout
        assert before.exit_code == after.exit_code == 0


class TestHeadlineDirections:
    def test_mcf_splits_node(self, compiled):
        res = compiled[MCF.name]
        d = res.decision_for("node")
        assert d.action == "split"
        assert "ident" in d.dead_fields     # the unused field

    def test_mcf_hot_fields_stay_hot(self, compiled):
        """§2.4: potential/mark/time must not be split out."""
        d = compiled[MCF.name].decision_for("node")
        for hot in ("potential", "mark", "time", "pred"):
            assert hot not in d.cold_fields

    def test_art_peels_per_field(self, compiled):
        res = compiled[ART.name]
        d = res.decision_for("f1_neuron")
        assert d.action == "peel"
        assert all(len(g) == 1 for g in d.groups)

    def test_moldyn_keeps_force_fields_together(self, compiled):
        res = compiled[MOLDYN.name]
        d = res.decision_for("particle")
        assert d.action == "peel"
        force = {"x", "y", "z", "fx", "fy", "fz"}
        assert any(force <= set(g) for g in d.groups)

    def test_gobmk_transforms_nothing(self, compiled):
        res = compiled["gobmk"]
        assert res.transformed_types() == []

    def test_degrade_benchmarks_split(self, compiled):
        for name in ("cactusADM", "calculix", "h264avc"):
            res = compiled[name]
            assert any(d.action == "split"
                       for d in res.transformed_types()), name

    @pytest.mark.slow
    def test_headline_gains_direction(self):
        for wl, lo, hi in [(MCF, 3.0, 60.0), (ART, 40.0, 250.0),
                           (MOLDYN, 5.0, 60.0)]:
            res = compile_program(wl.program("ref"))
            r0 = run_program(res.program)
            r1 = run_program(res.transformed)
            gain = 100.0 * (r0.cycles / r1.cycles - 1.0)
            assert lo <= gain <= hi, f"{wl.name}: {gain:+.1f}%"


class TestGenerator:
    def test_population_counts_exact(self):
        spec = PopulationSpec(prefix="gen", legal=4, relax_only=6,
                              hard=8)
        src = generate_population(spec)
        p = Program.from_source(src)
        leg = analyze_legality(p)
        analyze_escapes(p, leg)
        assert leg.counts() == (18, 4, 10)

    def test_population_is_runnable(self):
        spec = PopulationSpec(prefix="gen", legal=2, relax_only=3,
                              hard=6)
        src = generate_population(spec)
        src += "\nint main() { __filler_main(); return 0; }\n"
        r = run_program(Program.from_source(src))
        assert r.exit_code == 0

    def test_deterministic(self):
        spec = PopulationSpec(prefix="x", legal=3, relax_only=3, hard=3)
        assert generate_population(spec) == generate_population(spec)

    def test_population_for_row(self):
        pop = population_for_row("p", types=20, legal=5, relaxed=12,
                                 kernel_types=3, kernel_legal=2,
                                 kernel_relaxed=3)
        assert pop.total == 17
        assert pop.legal == 3
        assert pop.relax_only == 6
        assert pop.hard == 8

    def test_inconsistent_row_rejected(self):
        with pytest.raises(ValueError):
            population_for_row("p", types=3, legal=5, relaxed=5)
